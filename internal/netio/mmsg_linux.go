//go:build linux && (amd64 || arm64)

package netio

import (
	"syscall"
	"unsafe"
)

// Batched backend: recvmmsg(2)/sendmmsg(2) over the runtime poller.
//
// The toolchain's frozen syscall package predates sendmmsg, so the two
// syscall numbers are defined per-arch in sysnum_linux_*.go rather than
// pulled from golang.org/x/sys (which this build deliberately avoids).
// Both calls run non-blocking (MSG_DONTWAIT) inside RawConn.Read/Write
// callbacks: EAGAIN returns false to park the goroutine on the netpoller,
// which keeps read deadlines, Close wake-ups, and scheduler integration
// identical to the stock net path while batching the data plane.

const supportsBatch = true

// soReusePort is SO_REUSEPORT, absent from the frozen syscall package.
const soReusePort = 15

// reusePortControl is the ListenConfig hook that sets SO_REUSEPORT before
// bind, letting per-core listeners share one address.
func reusePortControl(network, address string, c syscall.RawConn) error {
	var serr error
	err := c.Control(func(fd uintptr) {
		serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
	})
	if err != nil {
		return err
	}
	return serr
}

// mmsghdr mirrors struct mmsghdr: a msghdr plus the kernel-filled datagram
// length. The pad keeps the 64-bit layout (sizeof == 64 on amd64/arm64).
type mmsghdr struct {
	hdr syscall.Msghdr
	n   uint32
	_   [4]byte
}

// mmsgBackend holds the preallocated, pinned syscall plumbing for one Conn.
// Everything the kernel writes through — headers, iovecs, name buffers —
// lives in arrays allocated once at construction, and the RawConn
// callbacks are bound methods cached as closures, so a steady-state
// recv/send cycle allocates nothing.
type mmsgBackend struct {
	c    *Conn
	rawc syscall.RawConn

	// Receive side: hs[i] points at iovs[i] → c.bufs[i] and names[i].
	hs    []mmsghdr
	iovs  []syscall.Iovec
	names []syscall.RawSockaddrInet6

	recvN   int
	recvErr error
	readFn  func(uintptr) bool

	// Transmit side: rebuilt per send() from the queued payload slices
	// (connected socket, so no names).
	txHs    []mmsghdr
	txIovs  []syscall.Iovec
	txFrom  int
	txTo    int
	txErr   error
	writeFn func(uintptr) bool
}

func newBatchBackend(c *Conn) (backend, error) {
	rawc, err := c.pc.SyscallConn()
	if err != nil {
		return nil, err
	}
	b := &mmsgBackend{
		c:      c,
		rawc:   rawc,
		hs:     make([]mmsghdr, c.batch),
		iovs:   make([]syscall.Iovec, c.batch),
		names:  make([]syscall.RawSockaddrInet6, c.batch),
		txHs:   make([]mmsghdr, c.batch),
		txIovs: make([]syscall.Iovec, c.batch),
	}
	for i := range b.hs {
		b.iovs[i].Base = &c.bufs[i][0]
		b.iovs[i].SetLen(len(c.bufs[i]))
		b.hs[i].hdr.Name = (*byte)(unsafe.Pointer(&b.names[i]))
		b.hs[i].hdr.Namelen = syscall.SizeofSockaddrInet6
		b.hs[i].hdr.Iov = &b.iovs[i]
		b.hs[i].hdr.Iovlen = 1
	}
	for i := range b.txHs {
		b.txHs[i].hdr.Iov = &b.txIovs[i]
		b.txHs[i].hdr.Iovlen = 1
	}
	b.readFn = b.read
	b.writeFn = b.write
	return b, nil
}

func (b *mmsgBackend) batched() bool { return true }

func (b *mmsgBackend) recv() (int, error) {
	b.recvN, b.recvErr = 0, nil
	// rawc.Read blocks on the netpoller until readable (or deadline /
	// close), then runs b.read; false from b.read re-parks.
	if err := b.rawc.Read(b.readFn); err != nil {
		return 0, err
	}
	if b.recvErr != nil {
		return 0, b.recvErr
	}
	c := b.c
	for i := 0; i < b.recvN; i++ {
		c.lens[i] = int(b.hs[i].n)
		c.srcIP[i], c.srcPt[i] = parseName(&b.names[i])
	}
	return b.recvN, nil
}

// read is the RawConn.Read callback: one recvmmsg for up to Batch
// datagrams. Returning false on EAGAIN parks the goroutine until the
// socket is readable again.
func (b *mmsgBackend) read(fd uintptr) bool {
	for i := range b.hs {
		// The kernel overwrites Namelen per datagram; reset before reuse.
		b.hs[i].hdr.Namelen = syscall.SizeofSockaddrInet6
	}
	n, _, errno := syscall.Syscall6(sysRecvmmsg, fd,
		uintptr(unsafe.Pointer(&b.hs[0])), uintptr(len(b.hs)),
		uintptr(syscall.MSG_DONTWAIT), 0, 0)
	if errno == syscall.EAGAIN || errno == syscall.EINTR {
		return false
	}
	if errno != 0 {
		b.recvErr = errno
		return true
	}
	b.recvN = int(n)
	return true
}

func (b *mmsgBackend) send(payloads [][]byte) error {
	for i := range payloads {
		p := payloads[i]
		if len(p) > 0 {
			b.txIovs[i].Base = &p[0]
		} else {
			b.txIovs[i].Base = nil
		}
		b.txIovs[i].SetLen(len(p))
	}
	b.txFrom, b.txTo, b.txErr = 0, len(payloads), nil
	// The kernel may take a partial batch; resume from the first unsent
	// message until the queue drains or a real error surfaces.
	for b.txFrom < b.txTo {
		if err := b.rawc.Write(b.writeFn); err != nil {
			return err
		}
		if b.txErr != nil {
			return b.txErr
		}
	}
	return nil
}

// write is the RawConn.Write callback: one sendmmsg for the unsent tail.
func (b *mmsgBackend) write(fd uintptr) bool {
	n, _, errno := syscall.Syscall6(sysSendmmsg, fd,
		uintptr(unsafe.Pointer(&b.txHs[b.txFrom])), uintptr(b.txTo-b.txFrom),
		uintptr(syscall.MSG_DONTWAIT), 0, 0)
	if errno == syscall.EAGAIN || errno == syscall.EINTR {
		return false
	}
	if errno != 0 {
		b.txErr = errno
		return true
	}
	b.txFrom += int(n)
	return true
}

// parseName extracts (big-endian IPv4 address, host-order port) from a raw
// kernel sockaddr. IPv6 sources map to their low 4 address bytes — exact
// for v4-mapped addresses (the common case on a dual-stack listener), a
// stable flow key otherwise.
func parseName(sa *syscall.RawSockaddrInet6) (uint32, uint16) {
	// Port is stored in network byte order in both sockaddr families.
	port := sa.Port>>8 | sa.Port<<8
	switch sa.Family {
	case syscall.AF_INET:
		sa4 := (*syscall.RawSockaddrInet4)(unsafe.Pointer(sa))
		a := sa4.Addr
		return uint32(a[0])<<24 | uint32(a[1])<<16 | uint32(a[2])<<8 | uint32(a[3]), port
	case syscall.AF_INET6:
		a := sa.Addr
		return uint32(a[12])<<24 | uint32(a[13])<<16 | uint32(a[14])<<8 | uint32(a[15]), port
	}
	return 0, 0
}
