//go:build linux

package netio

import "testing"

// TestKernelDropsReadable pins that a live UDP socket's drop counter can be
// located in /proc/net/udp{,6} by inode — a fresh socket must report ok=true
// with zero drops, for both backends. Off-Linux the method compiles to
// (0, false) and this file does not build.
func TestKernelDropsReadable(t *testing.T) {
	for _, cfg := range []Config{{Batch: 8}, {Batch: 8, ForceSingle: true}} {
		c, err := Listen("127.0.0.1:0", cfg)
		if err != nil {
			t.Fatalf("Listen: %v", err)
		}
		d, ok := c.KernelDrops()
		if !ok {
			t.Errorf("ForceSingle=%v: KernelDrops ok=false for a live socket", cfg.ForceSingle)
		}
		if d != 0 {
			t.Errorf("ForceSingle=%v: fresh socket reports %d kernel drops, want 0", cfg.ForceSingle, d)
		}
		c.Close()
		if _, ok := c.KernelDrops(); ok {
			t.Errorf("ForceSingle=%v: KernelDrops ok=true after Close", cfg.ForceSingle)
		}
	}
}
