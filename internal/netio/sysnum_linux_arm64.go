//go:build linux && arm64

package netio

// recvmmsg/sendmmsg syscall numbers for linux/arm64 (generic unistd table).
const (
	sysRecvmmsg uintptr = 243
	sysSendmmsg uintptr = 269
)
