// Package netio is the batched packet-I/O layer of the live datapath: UDP
// sockets with one syscall per burst in each direction instead of one per
// datagram.
//
// On Linux (amd64/arm64) receive and transmit go through recvmmsg(2) and
// sendmmsg(2) over preallocated, pinned buffer/iovec/name arrays, so the
// steady state is zero allocations and one syscall per burst — the
// userspace analogue of a DPDK rx_burst/tx_burst. The syscalls are driven
// through net.UDPConn's SyscallConn, so the runtime poller still owns
// blocking and read deadlines, and the portable API is identical either
// way. Everywhere else (and under Config.ForceSingle, which is how the
// fallback is exercised in tests on any platform) the same API degrades to
// a single-datagram ReadFromUDPAddrPort/Write fallback.
//
// With Config.ReusePort, N listeners can bind the same address and the
// kernel load-balances flows across them by source hash — the per-core
// socket model of a run-to-completion datapath (each core owns socket →
// enforce → emit with no cross-core handoff).
//
// A Conn is a single-goroutine object: one worker owns one Conn. Receive
// results are exposed as views into the Conn's preallocated buffers
// (Payload/Src), valid until the next RecvBatch.
package netio

import (
	"context"
	"fmt"
	"net"
	"time"
)

// DefaultBatch is the datagrams-per-syscall burst size, matched to the
// engine's enforcement burst (enforcer.DefaultBurst).
const DefaultBatch = 32

// DefaultBufBytes is the per-slot receive buffer size. 2048 covers any
// non-jumbo datagram; raise it for jumbo or fragmented-reassembly loads.
const DefaultBufBytes = 2048

// Config parameterizes a Conn.
type Config struct {
	// Batch is the burst size in datagrams per syscall (default
	// DefaultBatch).
	Batch int
	// BufBytes is each receive slot's buffer size (default
	// DefaultBufBytes). Datagrams longer than this are truncated by the
	// kernel, as with any undersized recv buffer.
	BufBytes int
	// ReusePort sets SO_REUSEPORT on a listening socket so multiple
	// per-core listeners can share one address (Linux batched backend
	// only; Listen fails where unsupported rather than silently binding
	// a second socket).
	ReusePort bool
	// ForceSingle forces the portable single-datagram fallback backend
	// even where the batched one is available — the hook tests use to
	// exercise the fallback path on Linux.
	ForceSingle bool
}

func (c Config) withDefaults() Config {
	if c.Batch <= 0 {
		c.Batch = DefaultBatch
	}
	if c.BufBytes <= 0 {
		c.BufBytes = DefaultBufBytes
	}
	return c
}

// Conn is a batched UDP endpoint. Listening Conns receive (RecvBatch,
// Payload, Src); connected Conns transmit (QueueTx, FlushTx). One
// goroutine owns a Conn; distinct Conns are fully independent.
type Conn struct {
	pc    *net.UDPConn
	be    backend
	batch int

	// Receive views, filled by RecvBatch, valid until the next call.
	bufs  [][]byte
	lens  []int
	srcIP []uint32
	srcPt []uint16

	// Transmit queue: payload references only — FlushTx sends them
	// without copying, so the backing buffers must stay untouched until
	// it returns.
	txPay [][]byte
	txN   int
}

// backend is the platform I/O strategy behind a Conn.
type backend interface {
	// recv blocks (respecting the read deadline) until at least one
	// datagram arrives, fills the Conn's lens/src views, and returns the
	// datagram count.
	recv() (int, error)
	// send transmits every payload on the connected socket.
	send(payloads [][]byte) error
	// batched reports whether this is the one-syscall-per-burst backend.
	batched() bool
}

// SupportsBatch reports whether this platform has the batched
// recvmmsg/sendmmsg backend compiled in.
func SupportsBatch() bool { return supportsBatch }

// Listen opens a receiving Conn on a UDP address.
func Listen(addr string, cfg Config) (*Conn, error) {
	cfg = cfg.withDefaults()
	var lc net.ListenConfig
	if cfg.ReusePort {
		if cfg.ForceSingle || !supportsBatch {
			return nil, fmt.Errorf("netio: SO_REUSEPORT not supported by the fallback backend")
		}
		lc.Control = reusePortControl
	}
	pc, err := lc.ListenPacket(context.Background(), "udp", addr)
	if err != nil {
		return nil, err
	}
	return newConn(pc.(*net.UDPConn), cfg)
}

// Dial opens a connected (transmitting) Conn to a UDP address.
func Dial(addr string, cfg Config) (*Conn, error) {
	cfg = cfg.withDefaults()
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	uc, err := net.DialUDP("udp", nil, ua)
	if err != nil {
		return nil, err
	}
	return newConn(uc, cfg)
}

// newConn wires a Conn over an open socket, choosing the batched backend
// where available (and not overridden).
func newConn(uc *net.UDPConn, cfg Config) (*Conn, error) {
	c := &Conn{
		pc:    uc,
		batch: cfg.Batch,
		bufs:  make([][]byte, cfg.Batch),
		lens:  make([]int, cfg.Batch),
		srcIP: make([]uint32, cfg.Batch),
		srcPt: make([]uint16, cfg.Batch),
		txPay: make([][]byte, cfg.Batch),
	}
	for i := range c.bufs {
		c.bufs[i] = make([]byte, cfg.BufBytes)
	}
	if supportsBatch && !cfg.ForceSingle {
		be, err := newBatchBackend(c)
		if err != nil {
			uc.Close()
			return nil, err
		}
		c.be = be
		return c, nil
	}
	c.be = &simpleBackend{c: c}
	return c, nil
}

// Batch returns the Conn's burst size.
func (c *Conn) Batch() int { return c.batch }

// Batched reports whether this Conn uses the one-syscall-per-burst backend.
func (c *Conn) Batched() bool { return c.be.batched() }

// LocalAddr returns the bound address.
func (c *Conn) LocalAddr() net.Addr { return c.pc.LocalAddr() }

// SetReadDeadline bounds the next RecvBatch (zero time = no deadline). A
// deadline hit surfaces as a net.Error with Timeout() true, exactly like
// net.UDPConn.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.pc.SetReadDeadline(t) }

// Close closes the socket; a concurrent blocked RecvBatch returns an error.
func (c *Conn) Close() error { return c.pc.Close() }

// RecvBatch blocks until at least one datagram arrives (or the read
// deadline passes) and returns how many were received — up to Batch in one
// recvmmsg on the batched backend, exactly one on the fallback. The
// datagrams are read through Payload and Src; the views stay valid until
// the next RecvBatch.
func (c *Conn) RecvBatch() (int, error) { return c.be.recv() }

// Payload returns the i-th received datagram's bytes, a view into the
// Conn's receive buffer — valid until the next RecvBatch.
func (c *Conn) Payload(i int) []byte { return c.bufs[i][:c.lens[i]] }

// Src returns the i-th received datagram's source as a big-endian IPv4
// address (for IPv6 sources, the low 4 address bytes — exact for
// v4-mapped, a stable key otherwise) and port.
func (c *Conn) Src(i int) (ip uint32, port uint16) { return c.srcIP[i], c.srcPt[i] }

// QueueTx stages one datagram for the next FlushTx, by reference — no
// copy. The caller must keep p's backing array untouched until FlushTx
// returns (the zero-copy contract a run-to-completion loop satisfies
// naturally: rx buffers are only reused after the burst is enforced,
// emitted, and flushed). Returns false when the transmit queue is full —
// flush first.
func (c *Conn) QueueTx(p []byte) bool {
	if c.txN >= len(c.txPay) {
		return false
	}
	c.txPay[c.txN] = p
	c.txN++
	return true
}

// QueuedTx reports how many datagrams are staged for FlushTx.
func (c *Conn) QueuedTx() int { return c.txN }

// FlushTx transmits every queued datagram on the connected socket — one
// sendmmsg per call on the batched backend (more if the kernel takes a
// partial batch). The queue is emptied even on error: a transmit error on
// an open-loop datapath sheds, it does not retry into a growing backlog.
func (c *Conn) FlushTx() error {
	if c.txN == 0 {
		return nil
	}
	n := c.txN
	c.txN = 0
	return c.be.send(c.txPay[:n])
}

// simpleBackend is the portable single-datagram fallback: one
// ReadFromUDPAddrPort or Write syscall per datagram, allocation-free via
// netip. It compiles (and is tested) everywhere, so the fallback path is
// exercised on Linux too, not just on the platforms that need it.
type simpleBackend struct {
	c *Conn
}

func (b *simpleBackend) batched() bool { return false }

func (b *simpleBackend) recv() (int, error) {
	c := b.c
	n, ap, err := c.pc.ReadFromUDPAddrPort(c.bufs[0])
	if err != nil {
		return 0, err
	}
	c.lens[0] = n
	a := ap.Addr().Unmap()
	if a.Is4() {
		b4 := a.As4()
		c.srcIP[0] = uint32(b4[0])<<24 | uint32(b4[1])<<16 | uint32(b4[2])<<8 | uint32(b4[3])
	} else {
		b16 := a.As16()
		c.srcIP[0] = uint32(b16[12])<<24 | uint32(b16[13])<<16 | uint32(b16[14])<<8 | uint32(b16[15])
	}
	c.srcPt[0] = ap.Port()
	return 1, nil
}

func (b *simpleBackend) send(payloads [][]byte) error {
	var first error
	for _, p := range payloads {
		if _, err := b.c.pc.Write(p); err != nil && first == nil {
			first = err
		}
	}
	return first
}
