package netio

import (
	"net"
	"sync/atomic"
	"testing"
	"time"

	"bcpqp/internal/units"
	"bcpqp/internal/workload"
)

// exchange pushes k datagrams through a loopback pair and asserts payload
// bytes and extracted sources survive the trip, for whichever backend cfg
// selects.
func exchange(t *testing.T, cfg Config, k int) {
	t.Helper()
	rx, err := Listen("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer rx.Close()
	tx, err := Dial(rx.LocalAddr().String(), cfg)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer tx.Close()

	txPort := tx.LocalAddr().(*net.UDPAddr).Port
	payload := make([][]byte, k)
	for i := range payload {
		payload[i] = []byte{byte(i), byte(i >> 8), 0xbc, byte(100 + i%7)}
		if !tx.QueueTx(payload[i]) {
			if err := tx.FlushTx(); err != nil {
				t.Fatalf("FlushTx: %v", err)
			}
			tx.QueueTx(payload[i])
		}
	}
	if err := tx.FlushTx(); err != nil {
		t.Fatalf("FlushTx: %v", err)
	}

	rx.SetReadDeadline(time.Now().Add(2 * time.Second))
	seen := make(map[byte]bool)
	got := 0
	for got < k {
		n, err := rx.RecvBatch()
		if err != nil {
			t.Fatalf("RecvBatch after %d/%d datagrams: %v", got, k, err)
		}
		for i := 0; i < n; i++ {
			p := rx.Payload(i)
			if len(p) != 4 || p[2] != 0xbc {
				t.Fatalf("datagram %d: bad payload %v", got, p)
			}
			idx := int(p[0]) | int(p[1])<<8
			if want := byte(100 + idx%7); p[3] != want {
				t.Fatalf("datagram idx %d: payload byte %d, want %d", idx, p[3], want)
			}
			seen[p[0]] = true
			ip, port := rx.Src(i)
			if ip != 0x7f000001 {
				t.Fatalf("datagram idx %d: src ip %#x, want 127.0.0.1", idx, ip)
			}
			if int(port) != txPort {
				t.Fatalf("datagram idx %d: src port %d, want %d", idx, port, txPort)
			}
			got++
		}
	}
	if len(seen) != k && k <= 256 {
		t.Fatalf("received %d distinct datagrams, want %d", len(seen), k)
	}
}

func TestExchangeFallback(t *testing.T) {
	exchange(t, Config{Batch: 8, ForceSingle: true}, 20)
}

func TestExchangeBatched(t *testing.T) {
	if !SupportsBatch() {
		t.Skip("batched backend not supported on this platform")
	}
	cfg := Config{Batch: 8}
	exchange(t, cfg, 20)

	rx, err := Listen("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer rx.Close()
	if !rx.Batched() {
		t.Fatalf("expected batched backend on this platform")
	}
}

func TestReadDeadline(t *testing.T) {
	for _, force := range []bool{true, false} {
		if !force && !SupportsBatch() {
			continue
		}
		rx, err := Listen("127.0.0.1:0", Config{Batch: 4, ForceSingle: force})
		if err != nil {
			t.Fatalf("Listen(force=%v): %v", force, err)
		}
		rx.SetReadDeadline(time.Now().Add(20 * time.Millisecond))
		_, err = rx.RecvBatch()
		ne, ok := err.(net.Error)
		if !ok || !ne.Timeout() {
			t.Fatalf("RecvBatch(force=%v) = %v, want net.Error timeout", force, err)
		}
		rx.Close()
	}
}

func TestReusePort(t *testing.T) {
	if !SupportsBatch() {
		t.Skip("SO_REUSEPORT requires the batched backend")
	}
	cfg := Config{Batch: 4, ReusePort: true}
	a, err := Listen("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatalf("Listen a: %v", err)
	}
	defer a.Close()
	b, err := Listen(a.LocalAddr().String(), cfg)
	if err != nil {
		t.Fatalf("Listen b on same address: %v", err)
	}
	defer b.Close()

	// Kernel hashes flows across the two sockets; with many distinct
	// source sockets at least one datagram must land on each... is not
	// guaranteed for small counts, so just assert everything arrives.
	const senders = 16
	for i := 0; i < senders; i++ {
		tx, err := Dial(a.LocalAddr().String(), cfg)
		if err != nil {
			t.Fatalf("Dial %d: %v", i, err)
		}
		tx.QueueTx([]byte{byte(i)})
		if err := tx.FlushTx(); err != nil {
			t.Fatalf("FlushTx %d: %v", i, err)
		}
		tx.Close()
	}
	deadline := time.Now().Add(2 * time.Second)
	a.SetReadDeadline(deadline)
	b.SetReadDeadline(deadline)
	got := 0
	for _, rx := range []*Conn{a, b} {
		for got < senders {
			rx.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
			n, err := rx.RecvBatch()
			if err != nil {
				break // drained this socket; the rest are on the other
			}
			got += n
		}
	}
	if got != senders {
		t.Fatalf("received %d datagrams across the REUSEPORT pair, want %d", got, senders)
	}
}

func TestReusePortRefusedOnFallback(t *testing.T) {
	if _, err := Listen("127.0.0.1:0", Config{ReusePort: true, ForceSingle: true}); err == nil {
		t.Fatalf("Listen with ReusePort+ForceSingle succeeded, want error")
	}
}

// TestSteadyStateAllocs locks in the 0 allocs/op contract on the receive
// and transmit hot paths, for both backends.
func TestSteadyStateAllocs(t *testing.T) {
	for _, force := range []bool{true, false} {
		if !force && !SupportsBatch() {
			continue
		}
		cfg := Config{Batch: 8, ForceSingle: force}
		rx, err := Listen("127.0.0.1:0", cfg)
		if err != nil {
			t.Fatalf("Listen(force=%v): %v", force, err)
		}
		tx, err := Dial(rx.LocalAddr().String(), cfg)
		if err != nil {
			t.Fatalf("Dial(force=%v): %v", force, err)
		}
		p := []byte{1, 2, 3, 4}
		rx.SetReadDeadline(time.Now().Add(5 * time.Second))
		cycle := func() {
			tx.QueueTx(p)
			if err := tx.FlushTx(); err != nil {
				t.Fatalf("FlushTx: %v", err)
			}
			for {
				if _, err := rx.RecvBatch(); err != nil {
					t.Fatalf("RecvBatch: %v", err)
				}
				return
			}
		}
		cycle() // warm up poller timers and lazy paths
		if allocs := testing.AllocsPerRun(200, cycle); allocs > 0 {
			t.Errorf("force=%v: %.2f allocs per rx/tx cycle, want 0", force, allocs)
		}
		rx.Close()
		tx.Close()
	}
}

func TestBlast(t *testing.T) {
	cfg := Config{Batch: 8, BufBytes: 256}
	rx, err := Listen("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer rx.Close()

	src := workload.NewFlood(workload.FloodConfig{
		Rate: units.MbpsRate(100), Flows: 4, PktSize: 100, Duration: time.Second,
	})
	const want = 50
	pkts, bytes, err := Blast(rx.LocalAddr().String(), src, BlastConfig{
		Config: cfg, MaxPackets: want,
	})
	if err != nil {
		t.Fatalf("Blast: %v", err)
	}
	if pkts != want {
		t.Fatalf("Blast sent %d packets, want %d", pkts, want)
	}
	if bytes != want*100 {
		t.Fatalf("Blast sent %d bytes, want %d", bytes, want*100)
	}

	got := 0
	rx.SetReadDeadline(time.Now().Add(2 * time.Second))
	for got < want {
		n, err := rx.RecvBatch()
		if err != nil {
			t.Fatalf("RecvBatch after %d/%d: %v", got, want, err)
		}
		for i := 0; i < n; i++ {
			if len(rx.Payload(i)) != 100 {
				t.Fatalf("datagram %d: %d bytes, want 100", got, len(rx.Payload(i)))
			}
			got++
		}
	}
}

func TestBlastStop(t *testing.T) {
	rx, err := Listen("127.0.0.1:0", Config{})
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer rx.Close()
	var stop atomic.Bool
	stop.Store(true)
	src := workload.NewFlood(workload.FloodConfig{
		Rate: units.MbpsRate(100), Flows: 1, PktSize: 64, Duration: time.Hour,
	})
	pkts, _, err := Blast(rx.LocalAddr().String(), src, BlastConfig{Stop: &stop})
	if err != nil {
		t.Fatalf("Blast: %v", err)
	}
	if pkts != 0 {
		t.Fatalf("Blast with pre-set stop sent %d packets, want 0", pkts)
	}
}
