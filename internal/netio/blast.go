package netio

import (
	"sync/atomic"

	"bcpqp/internal/packet"
	"bcpqp/internal/workload"
)

// Blast is the in-process open-loop load generator: it drains a workload
// source's packet schedule onto the wire as real UDP datagrams, batched
// through sendmmsg where available. "Open loop" means the schedule's
// virtual arrival times are ignored — datagrams leave as fast as the
// socket accepts them, overdriving the datapath under test the way a
// 10 GbE-equivalent hardware generator would on loopback. Payload bytes
// carry each packet's Size (clamped to the buffer) of zeros; the receiving
// datapath classifies by source address, not content.
type BlastConfig struct {
	Config
	// MaxPackets stops the blast after this many datagrams (0 = drain the
	// source).
	MaxPackets int64
	// Stop, when non-nil, aborts the blast between bursts once set — the
	// hook a benchmark uses to cut the generator when the measured side
	// has seen enough.
	Stop *atomic.Bool
}

// Blast sends src's schedule to dst and reports how many datagrams and
// payload bytes were put on the wire. Transmit errors end the blast early
// (returned alongside the counts already sent).
func Blast(dst string, src workload.Source, cfg BlastConfig) (pkts, bytes int64, err error) {
	cfg.Config = cfg.Config.withDefaults()
	conn, err := Dial(dst, cfg.Config)
	if err != nil {
		return 0, 0, err
	}
	defer conn.Close()

	// One zero-filled payload buffer per tx slot: QueueTx holds
	// references until FlushTx, so slots must not share a buffer.
	pay := make([][]byte, cfg.Batch)
	for i := range pay {
		pay[i] = make([]byte, cfg.BufBytes)
	}
	scratch := make([]packet.Packet, cfg.Batch)

	for {
		if cfg.Stop != nil && cfg.Stop.Load() {
			return pkts, bytes, nil
		}
		_, n, ok := src.Next(scratch)
		if !ok {
			return pkts, bytes, nil
		}
		for i := 0; i < n; i++ {
			size := scratch[i].Size
			if size <= 0 {
				size = 1
			}
			if size > cfg.BufBytes {
				size = cfg.BufBytes
			}
			conn.QueueTx(pay[i][:size])
			pkts++
			bytes += int64(size)
			if cfg.MaxPackets > 0 && pkts >= cfg.MaxPackets {
				err = conn.FlushTx()
				return pkts, bytes, err
			}
		}
		if err := conn.FlushTx(); err != nil {
			return pkts, bytes, err
		}
	}
}
