//go:build !linux

package netio

// KernelDrops is unavailable off Linux: there is no portable per-socket
// receive-drop counter. Callers treat ok=false as "reconciliation not
// possible", not as zero drops.
func (c *Conn) KernelDrops() (int64, bool) { return 0, false }
