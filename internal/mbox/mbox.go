// Package mbox implements a sharded middlebox engine that hosts many rate
// enforcers (one per traffic aggregate) concurrently — the deployment shape
// of the paper's middlebox, which polices thousands of subscribers at once.
//
// Aggregates are hashed across shards; each shard owns its aggregates
// exclusively and processes packets on a single goroutine, so enforcers
// never need locks on the datapath (the same shared-nothing sharding a
// DPDK middlebox gets from RSS queues). Packets are handed to shards
// through bounded rings: when a shard falls behind, excess packets are
// dropped and counted as overload — a middlebox must shed load, not
// buffer unboundedly.
//
// Control operations (add/remove/stats) are serialized through the same
// shard goroutines, so they are safe during full-rate traffic.
package mbox

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"bcpqp/internal/enforcer"
	"bcpqp/internal/packet"
)

// Emit is called by a shard for every transmitted packet. CE-marked
// transmissions (AQM marking) arrive with pkt.CE set. Emit runs on the
// shard goroutine: it must not block and must not call back into the
// Engine (doing so can deadlock against a concurrent Close).
type Emit func(pkt packet.Packet)

// Config configures an Engine.
type Config struct {
	// Shards is the number of shard goroutines (default GOMAXPROCS).
	Shards int
	// QueueDepth is each shard's ingress ring capacity (default 1024).
	QueueDepth int
	// Clock supplies the virtual time passed to enforcers. The default
	// is wall time since engine start. Tests inject deterministic
	// clocks.
	Clock func() time.Duration
}

// Engine hosts many enforcers behind a concurrent submit API.
type Engine struct {
	cfg    Config
	shards []*shard

	// Overloaded counts packets shed because a shard ring was full.
	Overloaded atomic.Int64

	mu     sync.RWMutex
	index  map[string]*aggregate // id -> aggregate (shard-owned state inside)
	closed bool
	wg     sync.WaitGroup
}

// aggregate pairs an enforcer with its emit hook.
type aggregate struct {
	id    string
	enf   enforcer.Enforcer
	emit  Emit
	shard *shard
}

// item is one unit of shard work.
type item struct {
	agg *aggregate
	pkt packet.Packet

	// Control messages (exactly one non-nil field).
	control func()
	done    chan struct{}
}

// shard is one single-goroutine execution domain.
type shard struct {
	in chan item
}

// New starts an Engine.
func New(cfg Config) *Engine {
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1024
	}
	if cfg.Clock == nil {
		start := time.Now()
		cfg.Clock = func() time.Duration { return time.Since(start) }
	}
	e := &Engine{
		cfg:   cfg,
		index: make(map[string]*aggregate),
	}
	for i := 0; i < cfg.Shards; i++ {
		s := &shard{in: make(chan item, cfg.QueueDepth)}
		e.shards = append(e.shards, s)
		e.wg.Add(1)
		go e.run(s)
	}
	return e
}

// run is a shard's event loop.
func (e *Engine) run(s *shard) {
	defer e.wg.Done()
	for it := range s.in {
		if it.control != nil {
			it.control()
			if it.done != nil {
				close(it.done)
			}
			continue
		}
		switch it.agg.enf.Submit(e.cfg.Clock(), it.pkt) {
		case enforcer.Transmit:
			if it.agg.emit != nil {
				it.agg.emit(it.pkt)
			}
		case enforcer.TransmitCE:
			if it.agg.emit != nil {
				it.pkt.CE = true
				it.agg.emit(it.pkt)
			}
		}
	}
}

// shardFor hashes an aggregate ID onto a shard.
func (e *Engine) shardFor(id string) *shard {
	h := fnv.New32a()
	h.Write([]byte(id))
	return e.shards[int(h.Sum32())%len(e.shards)]
}

// Add registers an enforcer for aggregate id. The engine takes exclusive
// ownership of the enforcer: callers must not touch it afterwards (it runs
// on a shard goroutine). emit receives transmitted packets and may be nil.
func (e *Engine) Add(id string, enf enforcer.Enforcer, emit Emit) error {
	if enf == nil {
		return fmt.Errorf("mbox: nil enforcer for %q", id)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return fmt.Errorf("mbox: engine closed")
	}
	if _, dup := e.index[id]; dup {
		return fmt.Errorf("mbox: aggregate %q already registered", id)
	}
	e.index[id] = &aggregate{id: id, enf: enf, emit: emit, shard: e.shardFor(id)}
	return nil
}

// Remove unregisters an aggregate. In-flight packets already queued to the
// shard are still processed (the aggregate's state stays valid until they
// drain).
func (e *Engine) Remove(id string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.index[id]; !ok {
		return fmt.Errorf("mbox: unknown aggregate %q", id)
	}
	delete(e.index, id)
	return nil
}

// Len returns the number of registered aggregates.
func (e *Engine) Len() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.index)
}

// Submit hands a packet to aggregate id. It never blocks: when the owning
// shard's ring is full the packet is shed and counted in Overloaded.
// Unknown aggregates report an error (misrouted traffic should be visible).
func (e *Engine) Submit(id string, pkt packet.Packet) error {
	// The read lock is held across the ring send so Close (which takes
	// the write lock before closing the rings) cannot race a send onto
	// a closed channel.
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return fmt.Errorf("mbox: engine closed")
	}
	agg, ok := e.index[id]
	if !ok {
		return fmt.Errorf("mbox: unknown aggregate %q", id)
	}
	select {
	case agg.shard.in <- item{agg: agg, pkt: pkt}:
		return nil
	default:
		e.Overloaded.Add(1)
		return nil
	}
}

// Stats reads an aggregate's enforcement statistics. The read executes on
// the owning shard goroutine, so it is safe during traffic.
func (e *Engine) Stats(id string) (enforcer.Stats, error) {
	var out enforcer.Stats
	err := e.control(id, func(enf enforcer.Enforcer) {
		if sr, ok := enf.(enforcer.StatsReader); ok {
			out = sr.EnforcerStats()
		}
	})
	return out, err
}

// control runs fn on the aggregate's shard goroutine and waits for it. The
// read lock is held only for the enqueue; waiting happens unlocked so shard
// emit callbacks can run freely.
func (e *Engine) control(id string, fn func(enforcer.Enforcer)) error {
	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		return fmt.Errorf("mbox: engine closed")
	}
	agg, ok := e.index[id]
	if !ok {
		e.mu.RUnlock()
		return fmt.Errorf("mbox: unknown aggregate %q", id)
	}
	done := make(chan struct{})
	agg.shard.in <- item{control: func() { fn(agg.enf) }, done: done}
	e.mu.RUnlock()
	<-done
	return nil
}

// Flush runs fn for aggregate id on its shard goroutine — the hook for
// periodic maintenance such as phantom Tick calls, executed race-free.
func (e *Engine) Flush(id string, fn func(enf enforcer.Enforcer)) error {
	return e.control(id, fn)
}

// Close drains the shards and stops their goroutines. Submitting after
// Close returns an error. Close is idempotent.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.mu.Unlock()
	for _, s := range e.shards {
		close(s.in)
	}
	e.wg.Wait()
}
