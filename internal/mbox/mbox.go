// Package mbox implements a sharded middlebox engine that hosts many rate
// enforcers (one per traffic aggregate) concurrently — the deployment shape
// of the paper's middlebox, which polices thousands of subscribers at once.
//
// The datapath is burst-oriented and handle-based, the way a DPDK middlebox
// receives traffic: packets arrive in bursts (rx_burst ≈ 32), aggregates
// are identified by small integer handles resolved once at Add time, and
// the engine's hot path is a lock-free read of an atomically swapped
// copy-on-write registry snapshot — no mutex, no map lookup, no hashing,
// no allocation per packet.
//
// Aggregates are hashed across shards; each shard owns its aggregates
// exclusively and processes bursts on a single goroutine, so enforcers
// never need locks on the datapath (the same shared-nothing sharding a
// DPDK middlebox gets from RSS queues). Single-packet Submits are coalesced
// into per-shard pending bursts flushed on a size-or-deadline trigger;
// SubmitBatch hands a whole burst to the shard in one ring operation. Each
// shard ring slot carries a burst: when a shard falls behind, excess bursts
// are shed and counted as overload — a middlebox must shed load, not
// buffer unboundedly.
//
// Control operations (stats/flush/live reconfiguration/snapshots) are
// serialized through the same shard goroutines, so they are safe during
// full-rate traffic; under saturation they fail over to a dedicated control
// lane so a wedged shard ring cannot stall the control plane behind data
// traffic. Update applies rate-plan and policy changes in-band and in
// place — admission state (phantom occupancy, burst-control windows, token
// levels) survives the change, preserving the Theorem 1 bound piecewise
// across it.
//
// The aggregate table has a bounded-memory lifecycle: slots freed by
// Remove are recycled through a free list, handles carry generation tags so
// a stale handle reports ErrStale rather than ever touching a recycled
// slot's new occupant, MaxAggregates caps admission with ErrTableFull, and
// an optional idle-TTL sweeper evicts quiescent aggregates (reporting their
// final stats through OnEvict). Snapshot/Restore serialize per-aggregate
// enforcer state for warm restarts.
//
// The runtime is fault-tolerant: every enforcement run and control item
// executes inside a panic barrier, a panicking enforcer is quarantined by a
// per-aggregate circuit breaker (its traffic degrades to FailClosed drops or
// FailOpen unenforced passes instead of killing the shard goroutine), a
// watchdog classifies shards Healthy/Degraded/Wedged from heartbeat age,
// ring depth and fault counters (Engine.Health), and Close is bounded by a
// deadline that force-abandons wedged shards rather than hanging.
package mbox

import (
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"bcpqp/internal/enforcer"
	"bcpqp/internal/obs"
	"bcpqp/internal/packet"
	"bcpqp/internal/sched"
	"bcpqp/internal/units"
)

// Emit is called by a shard for every transmitted packet. CE-marked
// transmissions (AQM marking) arrive with pkt.CE set. Emit runs on the
// shard goroutine: it must not block and must not call back into the
// Engine (doing so can deadlock against a concurrent Close).
type Emit func(pkt packet.Packet)

// Handle identifies a registered aggregate on the datapath. Handles are
// resolved once at Add time and are valid until the aggregate is removed or
// evicted. A handle packs a table slot (low 32 bits) with a generation tag
// (high bits): slots ARE recycled — an unbounded Add/Remove churn would
// otherwise grow the table forever — but each reuse bumps the slot's
// generation, so a stale handle fails resolution with ErrStale and can
// never alias the slot's next occupant.
type Handle int64

// NoHandle is the invalid handle returned alongside errors.
const NoHandle Handle = -1

// slot and generation packing. Generations are 31 bits (keeping Handle
// positive) and skip zero, so the zero Handle is never valid.
const genMask = 0x7fffffff

func (h Handle) slot() int   { return int(uint32(h)) }
func (h Handle) gen() uint32 { return uint32(uint64(h)>>32) & genMask }
func packHandle(slot int, gen uint32) Handle {
	return Handle(uint64(gen)<<32 | uint64(uint32(slot)))
}

// ErrNoStats reports that an aggregate's enforcer does not implement
// enforcer.StatsReader. It is the shared enforcer.ErrNoStats sentinel, so
// engine-level and node-level stats errors test identically. Test with
// errors.Is.
var ErrNoStats = enforcer.ErrNoStats

// ErrStale reports a handle whose aggregate has been removed or evicted.
// The slot may since have been recycled for a different aggregate; the
// generation tag guarantees the stale handle never reaches it. Test with
// errors.Is.
var ErrStale = errors.New("stale handle")

// ErrTableFull reports that Add was refused because the engine already
// hosts Config.MaxAggregates aggregates — admission control for the
// registry itself, so a churn storm degrades to rejected adds instead of
// unbounded memory growth. Test with errors.Is.
var ErrTableFull = errors.New("aggregate table full")

// ErrNotReconfigurable reports that an aggregate's enforcer does not
// implement enforcer.Reconfigurer. It is the shared
// enforcer.ErrNotReconfigurable sentinel, so engine-level and node-level
// reconfiguration errors test identically. Test with errors.Is.
var ErrNotReconfigurable = enforcer.ErrNotReconfigurable

// ErrBadNode reports a node-addressed operation against a node the
// aggregate does not have (out of tree range, or any node other than the
// root of a flat single-enforcer aggregate). It is the shared
// enforcer.ErrBadNode sentinel. Test with errors.Is.
var ErrBadNode = enforcer.ErrBadNode

// ErrSaturated reports that a control operation could not reach its shard
// within ControlTimeout on either the ordered data ring or the priority
// control lane. Test with errors.Is.
var ErrSaturated = errors.New("shard saturated")

// DegradeMode selects what happens to traffic for a quarantined aggregate
// (one whose enforcer tripped the panic circuit breaker).
type DegradeMode int32

const (
	// FailClosed drops a quarantined aggregate's packets (counted in
	// DegradedDrops). The safe default: a broken enforcer cannot be
	// trusted to police, so its traffic is not forwarded.
	FailClosed DegradeMode = iota
	// FailOpen transmits a quarantined aggregate's packets unenforced
	// (counted in DegradedPasses) — availability over enforcement, for
	// deployments where dropping a subscriber outright is worse than
	// temporarily not policing them.
	FailOpen
)

// String names the degrade mode for logs and health dumps.
func (m DegradeMode) String() string {
	switch m {
	case FailClosed:
		return "fail-closed"
	case FailOpen:
		return "fail-open"
	default:
		return fmt.Sprintf("degrade-mode(%d)", int32(m))
	}
}

// ShardState is the watchdog's classification of one shard.
type ShardState int32

const (
	// ShardHealthy: the shard is idle or making progress.
	ShardHealthy ShardState = iota
	// ShardDegraded: the shard is alive but under duress — it recently
	// recovered a panic, shed load, or its ring is nearly full.
	ShardDegraded
	// ShardWedged: the shard has queued or in-flight work but its
	// heartbeat has not advanced within WedgeTimeout — typically a
	// blocked Emit callback or a stalled enforcer.
	ShardWedged
)

// String names the shard state for logs and health dumps.
func (s ShardState) String() string {
	switch s {
	case ShardHealthy:
		return "healthy"
	case ShardDegraded:
		return "degraded"
	case ShardWedged:
		return "wedged"
	default:
		return fmt.Sprintf("shard-state(%d)", int32(s))
	}
}

// Config configures an Engine.
type Config struct {
	// Shards is the number of shard goroutines (default GOMAXPROCS).
	Shards int
	// QueueDepth is each shard's ingress ring capacity in BURSTS
	// (default 1024). With the default FlushBurst of 32 a full ring
	// therefore holds up to 32× as many packets.
	QueueDepth int
	// FlushBurst is the target burst size: single-packet Submits are
	// coalesced per shard until the pending burst reaches this size
	// (default 32). 1 disables coalescing — every Submit enqueues
	// immediately.
	FlushBurst int
	// FlushInterval is the deadline trigger: a partially filled pending
	// burst is flushed at least this often by a background flusher, so a
	// trickle of traffic is never stranded in staging (default 500µs).
	FlushInterval time.Duration
	// ControlTimeout bounds how long a control operation (Stats/Flush)
	// waits for space on the ordered data ring before failing over to
	// the shard's priority control lane, and then how long it waits for
	// the lane itself (default 10ms).
	ControlTimeout time.Duration
	// Clock supplies the virtual time passed to enforcers; it is read
	// once per burst, not once per packet. The default is wall time
	// since engine start. Tests inject deterministic clocks.
	Clock func() time.Duration

	// DegradeMode is the default degrade mode applied when an
	// aggregate's enforcer is quarantined (default FailClosed). Override
	// per aggregate with SetDegradeMode.
	DegradeMode DegradeMode
	// PanicThreshold is the circuit-breaker trip count: an aggregate is
	// quarantined once its enforcer (or emit hook) has panicked this
	// many times (default 1).
	PanicThreshold int
	// CloseTimeout bounds Close: shards that cannot be stopped and
	// drained within this deadline are force-abandoned and their queued
	// packets counted as shed (default 5s).
	CloseTimeout time.Duration
	// WatchdogInterval is how often the watchdog reclassifies shard
	// health (default 25ms).
	WatchdogInterval time.Duration
	// WedgeTimeout is the heartbeat age beyond which a shard with
	// pending or in-flight work is classified Wedged (default 1s).
	WedgeTimeout time.Duration
	// OnFault, when non-nil, is called once per recovered panic with the
	// aggregate id (empty when unattributable), the recovered value, and
	// the stack of the panicking goroutine. It runs on the shard
	// goroutine: it must be fast, must not block, and must not call back
	// into the Engine.
	OnFault func(id string, recovered any, stack []byte)

	// MaxAggregates caps the number of registered aggregates; Add reports
	// ErrTableFull beyond it. Zero means unlimited. Together with slot
	// recycling this bounds registry memory under arbitrary churn.
	MaxAggregates int
	// IdleTTL, when positive, enables the eviction sweeper: an aggregate
	// whose datapath has been quiet for longer than this (no bursts
	// processed, no Update) is evicted as if Removed, counted in Evicted,
	// and reported through OnEvict. Activity is stamped once per
	// processed burst on the shard goroutine — no additional per-packet
	// atomics on the hot path.
	IdleTTL time.Duration
	// SweepInterval is how often the sweeper scans for idle aggregates
	// (default IdleTTL/4, clamped to [1ms, 1s]). Eviction therefore lags
	// idleness by up to IdleTTL + SweepInterval.
	SweepInterval time.Duration
	// OnEvict, when non-nil, observes every idle eviction with the
	// aggregate's id and final enforcement statistics (zero Stats when
	// the enforcer exposes none or the shard was saturated). It runs on
	// the sweeper goroutine, after the aggregate has been unpublished and
	// its queued bursts drained; it must not block for long.
	OnEvict func(id string, final enforcer.Stats)

	// Observer, when non-nil, attaches the observability layer: per-shard
	// flight-recorder rings fed by datapath and fault events, per-burst
	// enforcement-latency histograms, and per-aggregate traffic counters
	// with windowed rate meters. The hot-path cost is a verdict tally per
	// enforced run (a handful of atomic adds — no per-packet work, no
	// allocation) plus one sampled trace event per Options.SampleEvery
	// runs; rare events (panics, quarantine, shed, failover, evict,
	// reconfiguration) are always recorded. Read it back through
	// Engine.TraceDump and Engine.Metrics.
	Observer *obs.Collector

	// Overload configures the overload-control plane: pressure tracking,
	// the priority-aware (harmonic) shed policy, pressure-tightened
	// idle-TTL, and Add-path admission eviction. Disabled by default —
	// the zero value leaves the engine's behaviour exactly as before.
	// See OverloadConfig.
	Overload OverloadConfig
}

// Engine hosts many enforcers behind a concurrent burst-submit API.
type Engine struct {
	cfg    Config
	shards []*shard

	// Overloaded counts packets shed because a shard ring was full.
	Overloaded atomic.Int64
	// Panics counts recovered enforcer/emit panics (each injected or
	// organic panic is recovered and counted exactly once).
	Panics atomic.Int64
	// DegradedDrops counts packets dropped because their aggregate was
	// quarantined in FailClosed mode (including the packets of the run
	// that tripped the breaker).
	DegradedDrops atomic.Int64
	// DegradedPasses counts packets transmitted unenforced because their
	// aggregate was quarantined in FailOpen mode.
	DegradedPasses atomic.Int64
	// BadVerdicts counts out-of-range verdicts (a corrupted or buggy
	// enforcer) coerced to Drop on the emit path.
	BadVerdicts atomic.Int64
	// ControlFailovers counts control operations that failed over from
	// the ordered data ring to the priority control lane.
	ControlFailovers atomic.Int64
	// Evicted counts aggregates removed by the idle-TTL sweeper.
	Evicted atomic.Int64
	// OverloadShed counts packets shed proactively by the overload
	// plane's priority policy — before they reached a ring, as opposed to
	// Overloaded's ring-full sheds.
	OverloadShed atomic.Int64
	// AdmissionEvictions counts aggregates evicted on the Add path to
	// admit new ones against a full table (also counted in Evicted).
	AdmissionEvictions atomic.Int64
	// InlineBursts counts bursts enforced through the ring-bypass fast
	// path (LocalSubmitter.SubmitBatch) — run to completion on the
	// submitting goroutine, no shard-ring hop.
	InlineBursts atomic.Int64
	// InlineFallbacks counts ring-bypass submissions that could not claim
	// their shard's occupancy word within ControlTimeout (a wedged
	// holder); their packets are counted in Overloaded.
	InlineFallbacks atomic.Int64

	// table is the copy-on-write registry snapshot the datapath reads
	// lock-free. Writers (Add/Remove/Close) serialize on mu and publish
	// whole new snapshots.
	table atomic.Pointer[registry]
	mu    sync.Mutex

	// Slot lifecycle, guarded by mu. slotGen[s] is the generation of the
	// aggregate currently (or most recently) occupying slot s; freeSlots
	// holds recyclable slots. len(slotGen) is the table's high-water mark
	// and, with MaxAggregates set, is bounded by it.
	slotGen   []uint32
	freeSlots []int

	// obsSample caches Observer.Options().SampleEvery for the shed-event
	// coalescing in enqueue (0 without an Observer).
	obsSample int

	// overload is the overload-control plane; nil unless
	// Config.Overload.Enabled, and a single nil check is the entire
	// datapath cost when disabled.
	overload *overloadPlane

	// extraMetrics holds metric-family sources attached by subsystems
	// layered above the engine (e.g. the cluster budget exchange), guarded
	// by extraMu; Metrics appends their families to every snapshot.
	extraMu      sync.Mutex
	extraMetrics []func() []obs.Family

	pool        sync.Pool // *burst
	flushStop   chan struct{}
	dead        chan struct{} // closed once Close finished (shards exited or abandoned)
	closeReport CloseReport   // stored by the first Close, returned by later ones
}

// registry is one immutable snapshot of the aggregate table.
type registry struct {
	closed bool
	slots  []*aggregate      // indexed by Handle.slot(); nil = vacant
	byID   map[string]Handle // compatibility shim for string-keyed lookup
}

// aggregate pairs an enforcer with its emit hook and owning shard, plus the
// mutable fault state shared by every registry snapshot that references it
// (snapshots copy the slot pointers, not the aggregates).
type aggregate struct {
	id    string
	h     Handle
	enf   enforcer.Enforcer
	emit  Emit
	shard *shard

	// tree is set when the enforcer is node-addressable
	// (enforcer.TreeEnforcer): a policy tree or a cascade chain. It opens
	// the aggregate's per-tree handle namespace — leaf handles resolve to
	// (aggregate, node), node-addressed bursts enter the tree at their
	// node, and the per-node control plane (UpdateNode, NodeStats) routes
	// through it. Nil for flat single-enforcer aggregates.
	tree enforcer.TreeEnforcer

	// Fault state. quarantined is the circuit breaker: once set, the
	// datapath never calls the enforcer again until Reinstate.
	quarantined    atomic.Bool
	panics         atomic.Int64
	degradedDrops  atomic.Int64
	degradedPasses atomic.Int64
	mode           atomic.Int32 // DegradeMode

	// shedClass is the overload plane's priority class (0 = shed last,
	// never proactively); shed counts this aggregate's proactively shed
	// packets. Both are dead weight unless Config.Overload.Enabled.
	shedClass atomic.Int32
	shed      atomic.Int64

	// lastActive is the idle-TTL activity stamp (wall nanos): set at Add,
	// once per processed burst on the shard goroutine (reusing the wall
	// clock read already taken for the shard heartbeat — no extra clock
	// call and no per-packet atomics), and on Update. The sweeper evicts
	// aggregates whose stamp is older than IdleTTL.
	lastActive atomic.Int64

	// obs is the per-aggregate metrics block (nil without an Observer).
	// It lives on the aggregate, not in slot-indexed collector storage, so
	// slot recycling under churn can never bleed one incarnation's
	// counters into the next.
	obs *obs.AggObs

	// audit is the conformance-audit state (see audit.go); nil when
	// unarmed. Arming swaps an immutable aggAudit in-band; the datapath
	// pays one pointer load per enforced run.
	audit atomic.Pointer[aggAudit]
}

// burst is one ring slot of work: either a single-aggregate burst (agg set,
// from SubmitBatch) or a mixed coalesced burst (aggs parallel to pkts, from
// staged single-packet Submits). node (single) / nodes (parallel to pkts)
// carry the tree-node ingress for leaf-addressed submissions; NoNode means
// whole-aggregate submission (node 0 is a valid node, so the zero value
// must never be used as "unset"). Bursts are pooled; the engine owns them.
type burst struct {
	pkts  []packet.Packet
	aggs  []*aggregate
	nodes []enforcer.NodeID
	agg   *aggregate
	node  enforcer.NodeID
}

// item is one unit of shard work.
type item struct {
	b *burst

	// Control messages. agg attributes a control panic to its aggregate.
	control func()
	done    chan struct{}
	agg     *aggregate
	stop    bool
}

// shard is one single-goroutine execution domain.
type shard struct {
	idx  int
	in   chan item // ordered data ring (bursts + in-band control)
	ctrl chan item // priority control lane used when in is saturated

	mu     sync.Mutex
	staged *burst // pending coalesced burst, nil when empty

	// occ is the shard occupancy word (occFree/occShard/occLocal): the
	// shard goroutine CASes it around every ring item and ring-bypass
	// submitters CAS it around every inline run, so exactly one goroutine
	// at a time uses the shard's enforcement state (enforcers, verdicts
	// scratch, trace sampling). See local.go.
	occ atomic.Int32

	verdicts []enforcer.Verdict // enforcement-side scratch, owned by the occupancy holder

	// Health plane. heartbeat is stamped (wall nanos) around every item;
	// busy is true while an item is being processed, so the watchdog can
	// tell a shard wedged mid-item (ring may be empty) from an idle one.
	heartbeat atomic.Int64
	busy      atomic.Bool
	processed atomic.Int64 // items completed
	panics    atomic.Int64 // panics recovered on this shard
	shed      atomic.Int64 // packets shed at this shard's ring
	state     atomic.Int32 // ShardState, maintained by the watchdog

	// obs is the shard's observability block (nil without an Observer):
	// its flight-recorder ring, burst-latency histogram and trace
	// sampling state.
	obs *obs.ShardObs
	// shedTick/shedAccum coalesce KindShed trace events: under sustained
	// overload every enqueue sheds, and recording each one would hammer
	// the collector's global sequence from every producer. The first shed
	// records immediately (the transition into overload is never missed);
	// after that one event per obsSample sheds carries the accumulated
	// packet count. Both are guarded by the shard's staging lock, which
	// every enqueue already holds. Overloaded/shed counters stay exact.
	shedTick  int
	shedAccum int64

	done chan struct{} // closed when the shard goroutine exits
}

// New starts an Engine.
func New(cfg Config) *Engine {
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1024
	}
	if cfg.FlushBurst <= 0 {
		cfg.FlushBurst = enforcer.DefaultBurst
	}
	if cfg.FlushInterval <= 0 {
		cfg.FlushInterval = 500 * time.Microsecond
	}
	if cfg.ControlTimeout <= 0 {
		cfg.ControlTimeout = 10 * time.Millisecond
	}
	if cfg.Clock == nil {
		start := time.Now()
		cfg.Clock = func() time.Duration { return time.Since(start) }
	}
	if cfg.PanicThreshold <= 0 {
		cfg.PanicThreshold = 1
	}
	if cfg.CloseTimeout <= 0 {
		cfg.CloseTimeout = 5 * time.Second
	}
	if cfg.WatchdogInterval <= 0 {
		cfg.WatchdogInterval = 25 * time.Millisecond
	}
	if cfg.WedgeTimeout <= 0 {
		cfg.WedgeTimeout = time.Second
	}
	if cfg.IdleTTL > 0 && cfg.SweepInterval <= 0 {
		cfg.SweepInterval = cfg.IdleTTL / 4
		if cfg.SweepInterval < time.Millisecond {
			cfg.SweepInterval = time.Millisecond
		}
		if cfg.SweepInterval > time.Second {
			cfg.SweepInterval = time.Second
		}
	}
	if cfg.Overload.Enabled {
		cfg.Overload = cfg.Overload.withDefaults(cfg.IdleTTL)
	}
	e := &Engine{
		cfg:       cfg,
		flushStop: make(chan struct{}),
		dead:      make(chan struct{}),
	}
	if cfg.Overload.Enabled {
		e.overload = newOverloadPlane(cfg.Overload, cfg.QueueDepth)
	}
	if cfg.Observer != nil {
		e.obsSample = cfg.Observer.Options().SampleEvery
	}
	e.pool.New = func() any {
		return &burst{
			pkts:  make([]packet.Packet, 0, cfg.FlushBurst),
			aggs:  make([]*aggregate, 0, cfg.FlushBurst),
			nodes: make([]enforcer.NodeID, 0, cfg.FlushBurst),
			node:  enforcer.NoNode,
		}
	}
	e.table.Store(&registry{byID: make(map[string]Handle)})
	now := time.Now().UnixNano()
	for i := 0; i < cfg.Shards; i++ {
		s := &shard{
			idx:      i,
			in:       make(chan item, cfg.QueueDepth),
			ctrl:     make(chan item, 16),
			verdicts: make([]enforcer.Verdict, cfg.FlushBurst),
			done:     make(chan struct{}),
		}
		s.heartbeat.Store(now)
		if cfg.Observer != nil {
			s.obs = cfg.Observer.Shard(i)
		}
		e.shards = append(e.shards, s)
		go e.run(s)
	}
	go e.flusher()
	go e.watchdog()
	if cfg.IdleTTL > 0 {
		go e.sweeper()
	}
	return e
}

// run is a shard's event loop. The control lane is drained with equal
// priority; it only carries traffic when the data ring is saturated, which
// is exactly when jumping the queue is the point.
func (e *Engine) run(s *shard) {
	defer close(s.done)
	for {
		select {
		case it := <-s.in:
			if e.process(s, it) {
				return
			}
		case it := <-s.ctrl:
			if e.process(s, it) {
				return
			}
		}
	}
}

// process executes one item on the shard goroutine; true means stop. It
// stamps the shard heartbeat around the item and marks the shard busy while
// the item is in flight, so the watchdog can tell wedged from idle. The
// item runs under the shard's occupancy word, serializing it against
// ring-bypass inline submitters (see local.go); stop items skip the word —
// they touch no enforcement state.
func (e *Engine) process(s *shard, it item) bool {
	if it.stop {
		return true
	}
	s.busy.Store(true)
	s.acquire(occShard)
	defer s.release()
	wall := time.Now().UnixNano()
	s.heartbeat.Store(wall)
	defer func() {
		s.processed.Add(1)
		// One wall-clock read serves both the heartbeat stamp and the
		// burst-latency histogram — enabling observability adds no clock
		// calls to the datapath.
		end := time.Now().UnixNano()
		s.heartbeat.Store(end)
		s.busy.Store(false)
		if s.obs != nil && it.b != nil {
			s.obs.ObserveBurst(end - wall)
		}
	}()
	if it.control != nil {
		e.runControl(s, it)
		return false
	}
	b := it.b
	// One clock read per burst (vs per packet): every packet in the burst
	// is enforced at the same virtual arrival time, the granularity a
	// burst-polling middlebox actually observes.
	now := e.cfg.Clock()
	if b.agg != nil {
		b.agg.lastActive.Store(wall)
		e.runBatch(s, now, b.agg, b.node, b.pkts)
	} else {
		// Mixed coalesced burst: group consecutive same-(aggregate, node)
		// runs so each run goes through the enforcer's native batch path
		// with a single path resolution.
		for i := 0; i < len(b.pkts); {
			j := i + 1
			for j < len(b.pkts) && b.aggs[j] == b.aggs[i] && b.nodes[j] == b.nodes[i] {
				j++
			}
			// One coarse idle-TTL stamp per run, reusing the wall time
			// already read for the heartbeat: no per-packet atomics.
			b.aggs[i].lastActive.Store(wall)
			e.runBatch(s, now, b.aggs[i], b.nodes[i], b.pkts[i:j])
			i = j
		}
	}
	e.putBurst(b)
	return false
}

// runControl executes one control item inside a panic barrier. done is
// closed even when fn panics, so a control waiter can never be leaked by a
// faulty enforcer; the panic is attributed to the item's aggregate.
func (e *Engine) runControl(s *shard, it item) {
	defer func() {
		if it.done != nil {
			close(it.done)
		}
	}()
	defer func() {
		if r := recover(); r != nil {
			e.notePanic(s, it.agg, r)
		}
	}()
	it.control()
}

// runBatch pushes one single-aggregate run through the enforcer's batch
// path inside a panic barrier. A quarantined aggregate's run never touches
// the enforcer: it degrades immediately (drop or pass-through per the
// aggregate's DegradeMode). A run that panics mid-flight quarantines the
// aggregate once the circuit-breaker threshold is reached and degrades the
// unhandled remainder of the run, and the shard goroutine survives.
func (e *Engine) runBatch(s *shard, now time.Duration, agg *aggregate, node enforcer.NodeID, pkts []packet.Packet) {
	if agg.quarantined.Load() {
		e.degrade(s, agg, pkts)
		return
	}
	if rest, faulted := e.enforceRun(s, now, agg, node, pkts); faulted {
		e.degrade(s, agg, rest)
	}
}

// enforceRun enforces and emits one run under a recover barrier. On panic
// it reports faulted=true and the packets that were not fully handled: the
// whole run when the enforcer itself panicked (no verdicts are trustworthy),
// or the un-emitted tail when the emit hook panicked (the packet in flight
// at the panic is indeterminate and is skipped).
func (e *Engine) enforceRun(s *shard, now time.Duration, agg *aggregate, node enforcer.NodeID, pkts []packet.Packet) (rest []packet.Packet, faulted bool) {
	enforced := false
	emitting := -1
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		e.notePanic(s, agg, r)
		faulted = true
		if !enforced {
			rest = pkts
		} else if emitting >= 0 && emitting+1 < len(pkts) {
			rest = pkts[emitting+1:]
		}
	}()
	if cap(s.verdicts) < len(pkts) {
		s.verdicts = make([]enforcer.Verdict, len(pkts))
	}
	v := s.verdicts[:len(pkts)]
	if agg.tree != nil && node != enforcer.NoNode {
		// Node-addressed run: enter the aggregate's tree at the leaf the
		// handle resolved to. NoNode means whole-aggregate submission,
		// which routes through the tree's own Enforcer implementation.
		agg.tree.SubmitBatchAt(now, node, pkts, v)
	} else {
		enforcer.SubmitBatch(agg.enf, now, pkts, v)
	}
	enforced = true
	if au := agg.audit.Load(); agg.obs != nil || au != nil {
		e.observeRun(s, now, agg, au, node, pkts, v)
	}
	if agg.emit == nil {
		return nil, false
	}
	for i, verdict := range v {
		emitting = i
		switch verdict {
		case enforcer.Transmit:
			agg.emit(pkts[i])
		case enforcer.TransmitCE:
			pkts[i].CE = true
			agg.emit(pkts[i])
		case enforcer.Drop, enforcer.Queued:
		default:
			// Out-of-range verdict (corrupted or buggy enforcer):
			// coerce to Drop and make it visible.
			e.BadVerdicts.Add(1)
		}
	}
	return nil, false
}

// observeRun tallies one enforced run's verdicts into the aggregate's
// metrics block, checks the tally against any armed conformance auditors
// (au, pre-loaded by the caller), and, on the sampling cadence, records a
// KindBurst trace event. It runs on the shard goroutine inside
// enforceRun's panic barrier, immediately after the verdicts are written:
// the tally is a single pass over the verdict slice plus a handful of
// atomic adds — no per-packet atomics, no interface calls, no allocation.
func (e *Engine) observeRun(s *shard, now time.Duration, agg *aggregate, au *aggAudit, node enforcer.NodeID, pkts []packet.Packet, v []enforcer.Verdict) {
	var accPkts, accBytes, drpPkts, drpBytes int64
	for i, verdict := range v {
		sz := int64(pkts[i].Size)
		switch verdict {
		case enforcer.Transmit, enforcer.TransmitCE, enforcer.Queued:
			accPkts++
			accBytes += sz
		default:
			drpPkts++
			drpBytes += sz
		}
	}
	if agg.obs != nil {
		agg.obs.Count(accPkts, accBytes, drpPkts, drpBytes, now)
	}
	if au != nil {
		e.auditRun(s, now, agg, au, node, accBytes)
	}
	if s.obs != nil && s.obs.SampleBurst() {
		s.obs.Record(obs.Event{
			Kind: obs.KindBurst,
			VT:   int64(now),
			Agg:  int64(agg.h),
			Node: int32(node),
			A:    accPkts,
			B:    drpPkts,
			C:    accBytes + drpBytes,
		})
	}
}

// record publishes a trace event, preferring the shard's ring (which stamps
// the shard index) and falling back to the collector's auxiliary ring for
// unattributed sources. It is a no-op without an Observer.
func (e *Engine) record(s *shard, ev obs.Event) {
	if s != nil && s.obs != nil {
		s.obs.Record(ev)
		return
	}
	if e.cfg.Observer != nil {
		ev.Shard = -1
		e.cfg.Observer.Record(ev)
	}
}

// recordControl publishes a control-plane trace event attributed to an
// aggregate id, resolving its handle when still registered. No-op without
// an Observer.
func (e *Engine) recordControl(id string, kind obs.Kind) {
	if e.cfg.Observer == nil {
		return
	}
	ev := obs.Event{Kind: kind, Shard: -1, Agg: -1, Node: -1}
	if agg, err := e.aggByID(id); err == nil {
		ev.Agg = int64(agg.h)
	}
	e.cfg.Observer.Record(ev)
}

// degrade applies an aggregate's DegradeMode to packets that cannot be
// enforced (quarantined aggregate, or the remainder of a faulted run).
func (e *Engine) degrade(s *shard, agg *aggregate, pkts []packet.Packet) {
	if len(pkts) == 0 {
		return
	}
	n := int64(len(pkts))
	if DegradeMode(agg.mode.Load()) == FailOpen {
		agg.degradedPasses.Add(n)
		e.DegradedPasses.Add(n)
		e.emitUnenforced(s, agg, pkts)
		return
	}
	agg.degradedDrops.Add(n)
	e.DegradedDrops.Add(n)
}

// emitUnenforced forwards a FailOpen aggregate's packets around its broken
// enforcer, with its own panic barrier (the emit hook may be the broken
// part).
func (e *Engine) emitUnenforced(s *shard, agg *aggregate, pkts []packet.Packet) {
	if agg.emit == nil {
		return
	}
	defer func() {
		if r := recover(); r != nil {
			e.notePanic(s, agg, r)
		}
	}()
	for _, p := range pkts {
		agg.emit(p)
	}
}

// notePanic records one recovered panic, trips the aggregate's circuit
// breaker at the configured threshold, and fires the OnFault hook.
func (e *Engine) notePanic(s *shard, agg *aggregate, recovered any) {
	e.Panics.Add(1)
	if s != nil {
		s.panics.Add(1)
	}
	id := ""
	aggH := int64(-1)
	quarantined := false
	if agg != nil {
		id = agg.id
		aggH = int64(agg.h)
		if n := agg.panics.Add(1); n >= int64(e.cfg.PanicThreshold) {
			// Swap so the quarantine transition is detected exactly once
			// even under racing panics.
			quarantined = !agg.quarantined.Swap(true)
		}
	}
	e.record(s, obs.Event{Kind: obs.KindPanic, Agg: aggH, Node: -1})
	if quarantined {
		e.record(s, obs.Event{Kind: obs.KindQuarantine, Agg: aggH, Node: -1, A: agg.panics.Load()})
	}
	if e.cfg.OnFault != nil {
		e.cfg.OnFault(id, recovered, debug.Stack())
	}
}

// flusher is the deadline trigger: it flushes every shard's pending
// coalesced burst at least once per FlushInterval so low-rate traffic is
// never stranded behind the size trigger.
func (e *Engine) flusher() {
	t := time.NewTicker(e.cfg.FlushInterval)
	defer t.Stop()
	for {
		select {
		case <-e.flushStop:
			return
		case <-t.C:
			for _, s := range e.shards {
				e.flushStaged(s)
			}
		}
	}
}

// flushStaged enqueues a shard's pending coalesced burst, if any. The
// enqueue happens under the staging lock so a producer that fills a fresh
// burst immediately afterwards cannot overtake the flushed one (per-
// producer FIFO is preserved).
func (e *Engine) flushStaged(s *shard) {
	s.mu.Lock()
	if b := s.staged; b != nil {
		s.staged = nil
		e.enqueue(s, b)
	}
	s.mu.Unlock()
}

// enqueue offers a burst to the shard ring without blocking: a full ring
// sheds the whole burst and counts it as overload.
func (e *Engine) enqueue(s *shard, b *burst) {
	select {
	case s.in <- item{b: b}:
	default:
		n := int64(len(b.pkts))
		e.Overloaded.Add(n)
		s.shed.Add(n)
		if s.obs != nil {
			s.shedAccum += n
			if s.shedTick--; s.shedTick <= 0 {
				s.shedTick = e.obsSample
				s.obs.Record(obs.Event{Kind: obs.KindShed, Agg: -1, Node: -1, A: s.shedAccum})
				s.shedAccum = 0
			}
		}
		e.putBurst(b)
	}
}

// getBurst takes a reset burst from the pool.
func (e *Engine) getBurst() *burst {
	return e.pool.Get().(*burst)
}

// putBurst clears a burst (dropping payload and aggregate references so
// the pool does not pin memory) and returns it to the pool.
func (e *Engine) putBurst(b *burst) {
	clear(b.pkts)
	clear(b.aggs)
	b.pkts = b.pkts[:0]
	b.aggs = b.aggs[:0]
	b.nodes = b.nodes[:0]
	b.agg = nil
	b.node = enforcer.NoNode
	e.pool.Put(b)
}

// shardFor hashes an aggregate ID onto a shard with an inline FNV-1a loop
// (no hasher allocation: the control path is allocation-free too).
func (e *Engine) shardFor(id string) *shard {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= prime32
	}
	return e.shards[int(h)%len(e.shards)]
}

// Add registers an enforcer for aggregate id and returns its datapath
// handle. The engine takes exclusive ownership of the enforcer: callers
// must not touch it afterwards (it runs on a shard goroutine). emit
// receives transmitted packets and may be nil.
//
// Slots freed by Remove or eviction are recycled (the table never grows
// past its high-water mark, itself capped by Config.MaxAggregates), with a
// fresh generation tag so handles to the slot's previous occupant fail with
// ErrStale. When the table is at MaxAggregates, Add reports ErrTableFull —
// unless the overload plane's EvictOnFull admission policy finds an
// aggregate idle past AdmissionTTL, in which case that victim is evicted
// (barrier-free, zero Stats through OnEvict) and the Add proceeds. Either
// way an Add storm against a full table stays O(table scan) per call and
// never serializes on the shards' control lanes.
func (e *Engine) Add(id string, enf enforcer.Enforcer, emit Emit) (Handle, error) {
	return e.add(id, enf, emit, nil)
}

// AddPinned is Add with explicit shard placement: the aggregate is owned by
// shard index shard instead of the ID-hash shard. Pinning is how a per-core
// run-to-completion datapath lines up core, shard, and aggregate — the
// worker that owns shard i reads traffic for its pinned aggregates and
// enforces them inline through a LocalSubmitter bound to the same shard.
// Everything else about the aggregate (handles, control plane, lifecycle,
// snapshots) is identical to Add.
func (e *Engine) AddPinned(id string, shard int, enf enforcer.Enforcer, emit Emit) (Handle, error) {
	if shard < 0 || shard >= len(e.shards) {
		return NoHandle, fmt.Errorf("mbox: aggregate %q: shard %d out of range [0,%d)",
			id, shard, len(e.shards))
	}
	return e.add(id, enf, emit, e.shards[shard])
}

// add is the shared Add/AddPinned body; pinned, when non-nil, overrides the
// ID-hash shard placement.
func (e *Engine) add(id string, enf enforcer.Enforcer, emit Emit, pinned *shard) (Handle, error) {
	if enf == nil {
		return NoHandle, fmt.Errorf("mbox: nil enforcer for %q", id)
	}
	e.mu.Lock()
	// OnEvict for an admission eviction fires after mu is released (LIFO
	// defers: unlock first, then the callback), so the hook may call back
	// into the engine.
	var evictedID string
	defer func() {
		if evictedID != "" && e.cfg.OnEvict != nil {
			e.cfg.OnEvict(evictedID, zeroStats)
		}
	}()
	defer e.mu.Unlock()
	t := e.table.Load()
	if t.closed {
		return NoHandle, fmt.Errorf("mbox: engine closed")
	}
	if _, dup := t.byID[id]; dup {
		return NoHandle, fmt.Errorf("mbox: aggregate %q already registered", id)
	}
	if e.cfg.MaxAggregates > 0 && len(t.byID) >= e.cfg.MaxAggregates {
		victim := e.evictForAdmissionLocked(t, time.Now().UnixNano())
		if victim == nil {
			return NoHandle, fmt.Errorf("mbox: aggregate %q: %w (%d registered)",
				id, ErrTableFull, len(t.byID))
		}
		evictedID = victim.id
		t = e.table.Load()
	}
	// Pick a slot: recycle from the free list, else extend the table.
	var slot int
	if n := len(e.freeSlots); n > 0 {
		slot = e.freeSlots[n-1]
		e.freeSlots = e.freeSlots[:n-1]
	} else {
		slot = len(e.slotGen)
		e.slotGen = append(e.slotGen, 0)
	}
	gen := (e.slotGen[slot] + 1) & genMask
	if gen == 0 {
		gen = 1
	}
	e.slotGen[slot] = gen
	h := packHandle(slot, gen)

	owner := pinned
	if owner == nil {
		owner = e.shardFor(id)
	}
	agg := &aggregate{id: id, h: h, enf: enf, emit: emit, shard: owner}
	if tree, ok := enf.(enforcer.TreeEnforcer); ok {
		// Node-addressable enforcer (policy tree, cascade chain): open its
		// per-tree handle namespace. Whole-aggregate submission through h
		// is unchanged; Leaf(h, node) mints node-addressed handles.
		agg.tree = tree
	}
	agg.mode.Store(int32(e.cfg.DegradeMode))
	if e.overload != nil {
		agg.shedClass.Store(int32(e.cfg.Overload.DefaultClass))
	}
	agg.lastActive.Store(time.Now().UnixNano())
	if e.cfg.Observer != nil {
		agg.obs = e.cfg.Observer.NewAggObs()
	}
	slots := make([]*aggregate, len(e.slotGen))
	copy(slots, t.slots)
	slots[slot] = agg
	nt := &registry{
		slots: slots,
		byID:  make(map[string]Handle, len(t.byID)+1),
	}
	for k, v := range t.byID {
		nt.byID[k] = v
	}
	nt.byID[id] = h
	e.table.Store(nt)
	return h, nil
}

// Remove unregisters an aggregate and returns its final enforcement
// statistics, so accounting is not silently lost at teardown.
//
// Drain semantics: unpublication is immediate — new Submits fail with
// ErrStale — but packets already staged or queued to the shard when Remove
// is called are still enforced and emitted (the aggregate's state stays
// valid until its queued bursts drain). The final stats are read through an
// in-band control barrier after those bursts, so they include every packet
// submitted happens-before the Remove call; packets submitted concurrently
// with Remove may land on either side.
//
// The aggregate is removed even when the stats read fails: a non-nil error
// (ErrNoStats for an enforcer without a StatsReader, ErrSaturated for a
// wedged shard, engine closed) qualifies the returned Stats, not the
// removal — only an unknown id leaves the table unchanged. The freed slot
// is recycled with a new generation, so the old handle reports ErrStale
// forever.
func (e *Engine) Remove(id string) (enforcer.Stats, error) {
	agg, err := e.unpublish(id, nil)
	if err != nil {
		return enforcer.Stats{}, err
	}
	e.record(nil, obs.Event{Kind: obs.KindRemove, Agg: int64(agg.h), Node: -1})
	return e.finalStats(agg)
}

// unpublish removes id from the registry (when cond, if non-nil, approves
// the currently registered aggregate) and recycles its slot. It returns the
// unpublished aggregate.
func (e *Engine) unpublish(id string, cond func(*aggregate) bool) (*aggregate, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.unpublishLocked(id, cond)
}

// unpublishLocked is unpublish with e.mu already held — the form the Add
// path's admission eviction needs, since Add itself holds the lock.
func (e *Engine) unpublishLocked(id string, cond func(*aggregate) bool) (*aggregate, error) {
	t := e.table.Load()
	if t.closed {
		return nil, fmt.Errorf("mbox: engine closed")
	}
	h, ok := t.byID[id]
	if !ok {
		return nil, fmt.Errorf("mbox: unknown aggregate %q", id)
	}
	agg := t.slots[h.slot()]
	if cond != nil && !cond(agg) {
		return nil, errEvictSkipped
	}
	nt := &registry{
		slots: append(make([]*aggregate, 0, len(t.slots)), t.slots...),
		byID:  make(map[string]Handle, len(t.byID)),
	}
	for k, v := range t.byID {
		if k != id {
			nt.byID[k] = v
		}
	}
	nt.slots[h.slot()] = nil
	e.table.Store(nt)
	e.freeSlots = append(e.freeSlots, h.slot())
	return agg, nil
}

// errEvictSkipped is unpublish's internal "condition declined" signal.
var errEvictSkipped = errors.New("mbox: eviction condition not met")

// finalStats reads an unpublished aggregate's statistics through an in-band
// control barrier on its shard, so every burst queued before unpublication
// has been enforced first.
func (e *Engine) finalStats(agg *aggregate) (enforcer.Stats, error) {
	var out enforcer.Stats
	var statErr error
	err := e.controlAgg(agg, func(enf enforcer.Enforcer) {
		if sr, ok := enf.(enforcer.StatsReader); ok {
			out = sr.EnforcerStats()
		} else {
			statErr = fmt.Errorf("mbox: aggregate %q: %w", agg.id, ErrNoStats)
		}
	})
	if err != nil {
		return out, err
	}
	return out, statErr
}

// Lookup resolves an aggregate ID to its datapath handle.
func (e *Engine) Lookup(id string) (Handle, error) {
	t := e.table.Load()
	h, ok := t.byID[id]
	if !ok {
		return NoHandle, fmt.Errorf("mbox: unknown aggregate %q", id)
	}
	return h, nil
}

// Len returns the number of registered aggregates.
func (e *Engine) Len() int {
	return len(e.table.Load().byID)
}

// resolve is the datapath handle check: a lock-free snapshot read, a
// bounds check, and a generation comparison. The generation comparison is
// what makes slot recycling safe: a handle to a removed aggregate whose
// slot now hosts a different one mismatches the occupant's generation and
// reports ErrStale — a stale handle can observe an error, never another
// aggregate's verdict.
func (e *Engine) resolve(h Handle) (*aggregate, error) {
	t := e.table.Load()
	if t.closed {
		return nil, fmt.Errorf("mbox: engine closed")
	}
	if h < 0 || h.slot() >= len(t.slots) {
		return nil, fmt.Errorf("mbox: invalid handle %d", h)
	}
	agg := t.slots[h.slot()]
	if agg == nil || agg.h != h {
		return nil, fmt.Errorf("mbox: handle %d: %w", h, ErrStale)
	}
	return agg, nil
}

// Submit hands one packet to the aggregate behind h. It never blocks: the
// packet joins the owning shard's pending burst (flushed on the size or
// deadline trigger), and when the shard ring is full the burst is shed and
// counted in Overloaded. With the overload plane active, packets whose
// aggregate's shed class exceeds its ring-occupancy ceiling are shed
// proactively and counted in OverloadShed. Invalid handles report an error
// (misrouted traffic should be visible).
func (e *Engine) Submit(h Handle, pkt packet.Packet) error {
	agg, err := e.resolve(h)
	if err != nil {
		return err
	}
	s := agg.shard
	if p := e.overload; p != nil && p.shedGate(s, agg) {
		e.shedPriority(s, agg, 1)
		return nil
	}
	s.mu.Lock()
	b := s.staged
	if b == nil {
		b = e.getBurst()
		s.staged = b
	}
	b.pkts = append(b.pkts, pkt)
	b.aggs = append(b.aggs, agg)
	b.nodes = append(b.nodes, enforcer.NoNode)
	if len(b.pkts) >= e.cfg.FlushBurst {
		s.staged = nil
		e.enqueue(s, b)
	}
	s.mu.Unlock()
	return nil
}

// SubmitBatch hands a whole burst for one aggregate to its shard in a
// single ring operation — the engine's preferred ingress path. The packets
// are copied into an engine-owned pooled buffer, so the caller may reuse
// pkts immediately; steady-state burst submission performs no allocation.
// Any pending coalesced single-packet burst for the shard is flushed first
// so per-producer FIFO order holds across both APIs. With the overload
// plane active, bursts whose aggregate's shed class exceeds its
// ring-occupancy ceiling are shed proactively (counted in OverloadShed)
// before any buffer is taken.
func (e *Engine) SubmitBatch(h Handle, pkts []packet.Packet) error {
	agg, err := e.resolve(h)
	if err != nil {
		return err
	}
	if len(pkts) == 0 {
		return nil
	}
	s := agg.shard
	if p := e.overload; p != nil && p.shedGate(s, agg) {
		e.shedPriority(s, agg, len(pkts))
		return nil
	}
	b := e.getBurst()
	b.agg = agg
	b.pkts = append(b.pkts, pkts...)
	s.mu.Lock()
	if st := s.staged; st != nil {
		s.staged = nil
		e.enqueue(s, st)
	}
	e.enqueue(s, b)
	s.mu.Unlock()
	return nil
}

// SubmitID is the string-keyed compatibility shim for callers that have
// not resolved a handle: one map lookup against the same lock-free
// registry snapshot, then the Submit path.
//
// Deprecated: resolve a Handle once at Add/Lookup time and use Submit or
// SubmitBatch; per-packet string lookups are exactly the overhead the
// burst datapath removes.
func (e *Engine) SubmitID(id string, pkt packet.Packet) error {
	t := e.table.Load()
	if t.closed {
		return fmt.Errorf("mbox: engine closed")
	}
	h, ok := t.byID[id]
	if !ok {
		return fmt.Errorf("mbox: unknown aggregate %q", id)
	}
	return e.Submit(h, pkt)
}

// Stats reads an aggregate's enforcement statistics. The read executes on
// the owning shard goroutine, so it is safe during traffic. An enforcer
// that does not implement enforcer.StatsReader reports ErrNoStats instead
// of silently returning zeros.
func (e *Engine) Stats(id string) (enforcer.Stats, error) {
	var out enforcer.Stats
	var statErr error
	err := e.control(id, func(enf enforcer.Enforcer) {
		if sr, ok := enf.(enforcer.StatsReader); ok {
			out = sr.EnforcerStats()
		} else {
			statErr = fmt.Errorf("mbox: aggregate %q: %w", id, ErrNoStats)
		}
	})
	if err != nil {
		return out, err
	}
	return out, statErr
}

// Flush runs fn for aggregate id on its shard goroutine — the hook for
// periodic maintenance such as phantom Tick calls, executed race-free.
func (e *Engine) Flush(id string, fn func(enf enforcer.Enforcer)) error {
	return e.control(id, fn)
}

// control runs fn on the aggregate's shard goroutine and waits for it.
func (e *Engine) control(id string, fn func(enforcer.Enforcer)) error {
	agg, err := e.aggByID(id)
	if err != nil {
		return err
	}
	return e.controlAgg(agg, fn)
}

// controlAgg runs fn for an already-resolved aggregate on its shard
// goroutine and waits for it. It works on unpublished aggregates too, which
// is how Remove and the eviction sweeper collect final statistics.
//
// The shard's pending coalesced burst is flushed first and the control
// item rides the ordered data ring, so fn observes every packet submitted
// before the call. When the data ring stays full past ControlTimeout
// (a saturated or wedged shard), the item fails over to the shard's
// dedicated control lane — jumping ahead of queued data is the price of
// not letting data traffic stall the control plane; if even the lane is
// full past the timeout, ErrSaturated is reported.
func (e *Engine) controlAgg(agg *aggregate, fn func(enforcer.Enforcer)) error {
	s := agg.shard
	e.flushStaged(s)
	done := make(chan struct{})
	it := item{control: func() { fn(agg.enf) }, done: done, agg: agg}

	timer := time.NewTimer(e.cfg.ControlTimeout)
	select {
	case s.in <- it:
		timer.Stop()
	case <-timer.C:
		// Ordered ring saturated: fail over to the priority lane.
		e.ControlFailovers.Add(1)
		e.record(s, obs.Event{Kind: obs.KindFailover, Agg: int64(agg.h), Node: -1})
		timer.Reset(e.cfg.ControlTimeout)
		select {
		case s.ctrl <- it:
			timer.Stop()
		case <-timer.C:
			return fmt.Errorf("mbox: aggregate %q: %w", agg.id, ErrSaturated)
		}
	}
	select {
	case <-done:
		return nil
	case <-e.dead:
		// The engine closed while the item was in flight; it may still
		// have been processed during the drain.
		select {
		case <-done:
			return nil
		default:
			return fmt.Errorf("mbox: engine closed")
		}
	}
}

// Update applies a live reconfiguration to an aggregate's enforcer, in
// place and in-band: fn runs on the owning shard goroutine with the
// engine's clock read there, serialized against the aggregate's bursts on
// the ordered ring. A concurrently running batch therefore never observes a
// partially applied configuration, fn observes every packet submitted
// before the call, and — because enforcers reconfigure in place (see
// enforcer.Reconfigurer) — admission state survives: no phantom occupancy
// reset, no refilled token bucket, no re-admitted slow-start burst. The
// Theorem 1 bound holds piecewise across the change.
//
// fn's error is reported but does not retract anything fn already mutated;
// enforcer Reconfigurers validate before mutating. Like all control
// operations, Update fails over to the priority control lane against a
// saturated shard and then reports ErrSaturated.
func (e *Engine) Update(id string, fn func(now time.Duration, enf enforcer.Enforcer) error) error {
	agg, err := e.aggByID(id)
	if err != nil {
		return err
	}
	// A reconfiguration is activity: a subscriber changing their rate
	// plan mid-quiet-period should not be evicted under them.
	agg.lastActive.Store(time.Now().UnixNano())
	var uerr error
	if cerr := e.controlAgg(agg, func(enf enforcer.Enforcer) {
		uerr = fn(e.cfg.Clock(), enf)
	}); cerr != nil {
		return cerr
	}
	return uerr
}

// SetRate changes an aggregate's enforced rate in-band, preserving its
// admission state (see Update). The enforcer must implement
// enforcer.Reconfigurer; ErrNotReconfigurable otherwise. An armed
// conformance auditor is rebased to the new rate atomically with the
// enforcer change (same in-band closure, same virtual time), so the
// audited envelope stays the piecewise Theorem-1 bound across the
// reconfiguration and never flags the change itself.
func (e *Engine) SetRate(id string, rate units.Rate) error {
	agg, err := e.aggByID(id)
	if err != nil {
		return err
	}
	agg.lastActive.Store(time.Now().UnixNano())
	var uerr error
	if cerr := e.controlAgg(agg, func(enf enforcer.Enforcer) {
		now := e.cfg.Clock()
		r, ok := enf.(enforcer.Reconfigurer)
		if !ok {
			uerr = fmt.Errorf("mbox: aggregate %q (%T): %w", id, enf, ErrNotReconfigurable)
			return
		}
		if uerr = r.SetRate(now, rate); uerr != nil {
			return
		}
		if au := agg.audit.Load(); au != nil && au.whole != nil {
			au.whole.Rebase(now, int64(rate))
		}
	}); cerr != nil {
		return cerr
	}
	if uerr == nil {
		e.recordControl(id, obs.KindRateUpdate)
	}
	return uerr
}

// SetPolicy changes an aggregate's intra-aggregate rate-sharing policy
// in-band, preserving its admission state (see Update). The engine takes
// ownership of the policy object. The enforcer must implement
// enforcer.Reconfigurer; enforcers without a policy dimension report
// enforcer.ErrNoPolicy.
func (e *Engine) SetPolicy(id string, policy *sched.Policy) error {
	err := e.Update(id, func(now time.Duration, enf enforcer.Enforcer) error {
		r, ok := enf.(enforcer.Reconfigurer)
		if !ok {
			return fmt.Errorf("mbox: aggregate %q (%T): %w", id, enf, ErrNotReconfigurable)
		}
		return r.SetPolicy(now, policy)
	})
	if err == nil {
		e.recordControl(id, obs.KindPolicyUpdate)
	}
	return err
}

// sweeper is the idle-TTL eviction loop: every SweepInterval it scans the
// registry snapshot for aggregates whose last activity stamp is older than
// IdleTTL and evicts them exactly as Remove would (unpublish, recycle the
// slot, drain queued bursts through the final-stats barrier), counting them
// in Evicted and reporting id + final stats through OnEvict. The idle check
// is re-verified under mu against the registered aggregate, so a sweep
// racing a Remove+Add of the same id never evicts the fresh incarnation.
func (e *Engine) sweeper() {
	t := time.NewTicker(e.cfg.SweepInterval)
	defer t.Stop()
	for {
		select {
		case <-e.flushStop:
			return
		case <-t.C:
			e.sweep()
		}
	}
}

// sweep performs one eviction scan. The TTL it applies is the
// pressure-tightened effective TTL: as the table fills past half of
// MaxAggregates, the overload plane shrinks it toward MinIdleTTL so a flash
// crowd recycles quiescent aggregates before the table pins at its cap.
// While the overload plane is active the final-stats barrier is skipped
// (zero Stats through OnEvict): an engine shedding load must not also
// serialize its sweeper on saturated shard rings.
func (e *Engine) sweep() {
	t := e.table.Load()
	if t.closed {
		return
	}
	ttl := int64(e.effectiveTTL())
	for _, agg := range t.slots {
		if agg == nil {
			continue
		}
		if time.Now().UnixNano()-agg.lastActive.Load() <= ttl {
			continue
		}
		evicted, err := e.unpublish(agg.id, func(cur *aggregate) bool {
			return cur == agg && time.Now().UnixNano()-cur.lastActive.Load() > ttl
		})
		if err != nil {
			continue // removed/re-added/woke up concurrently, or engine closed
		}
		var final enforcer.Stats
		if p := e.overload; p == nil || !p.active.Load() {
			final, _ = e.finalStats(evicted) // zero Stats when unobtainable
		}
		e.Evicted.Add(1)
		e.record(nil, obs.Event{Kind: obs.KindEvict, Agg: int64(evicted.h), Node: -1})
		if e.cfg.OnEvict != nil {
			e.cfg.OnEvict(evicted.id, final)
		}
	}
}

// aggByID resolves a live aggregate from the current registry snapshot.
func (e *Engine) aggByID(id string) (*aggregate, error) {
	t := e.table.Load()
	if t.closed {
		return nil, fmt.Errorf("mbox: engine closed")
	}
	h, ok := t.byID[id]
	if !ok {
		return nil, fmt.Errorf("mbox: unknown aggregate %q", id)
	}
	agg := t.slots[h.slot()]
	if agg == nil || agg.h != h {
		return nil, fmt.Errorf("mbox: unknown aggregate %q", id)
	}
	return agg, nil
}

// FaultRecord is one aggregate's fault-plane state.
type FaultRecord struct {
	// Panics is the number of recovered panics attributed to this
	// aggregate's enforcer or emit hook.
	Panics int64
	// Quarantined reports whether the circuit breaker is open: the
	// enforcer is bypassed and traffic degrades per Mode.
	Quarantined bool
	// DegradedDrops / DegradedPasses count this aggregate's packets
	// dropped (FailClosed) or forwarded unenforced (FailOpen).
	DegradedDrops  int64
	DegradedPasses int64
	// Mode is the aggregate's current degrade mode.
	Mode DegradeMode
}

// Faults reports an aggregate's fault-plane state.
func (e *Engine) Faults(id string) (FaultRecord, error) {
	agg, err := e.aggByID(id)
	if err != nil {
		return FaultRecord{}, err
	}
	return FaultRecord{
		Panics:         agg.panics.Load(),
		Quarantined:    agg.quarantined.Load(),
		DegradedDrops:  agg.degradedDrops.Load(),
		DegradedPasses: agg.degradedPasses.Load(),
		Mode:           DegradeMode(agg.mode.Load()),
	}, nil
}

// Quarantined reports whether an aggregate's circuit breaker is open.
func (e *Engine) Quarantined(id string) (bool, error) {
	agg, err := e.aggByID(id)
	if err != nil {
		return false, err
	}
	return agg.quarantined.Load(), nil
}

// SetDegradeMode overrides the engine-wide degrade mode for one aggregate.
// It may be called at any time, including while the aggregate is
// quarantined; in-flight runs observe the change on their next burst.
func (e *Engine) SetDegradeMode(id string, m DegradeMode) error {
	if m != FailClosed && m != FailOpen {
		return fmt.Errorf("mbox: invalid degrade mode %v", m)
	}
	agg, err := e.aggByID(id)
	if err != nil {
		return err
	}
	agg.mode.Store(int32(m))
	return nil
}

// Reinstate closes an aggregate's circuit breaker after a quarantine: the
// panic count resets and the datapath resumes calling the enforcer. The
// caller owns the backoff policy (reinstating a still-broken enforcer just
// trips the breaker again on its next panic). Reinstating a healthy
// aggregate is harmless and idempotent.
func (e *Engine) Reinstate(id string) error {
	agg, err := e.aggByID(id)
	if err != nil {
		return err
	}
	agg.panics.Store(0)
	if agg.quarantined.Swap(false) {
		e.record(nil, obs.Event{Kind: obs.KindReinstate, Agg: int64(agg.h), Node: -1})
	}
	return nil
}

// ShardHealth is the watchdog's view of one shard.
type ShardHealth struct {
	Shard        int
	State        ShardState
	QueueDepth   int           // bursts queued on the ordered data ring
	QueueCap     int           // ring capacity in bursts
	HeartbeatAge time.Duration // time since the shard last made progress
	Busy         bool          // an item is in flight right now
	Processed    int64         // items completed
	Panics       int64         // panics recovered on this shard
	Shed         int64         // packets shed at this shard's ring
}

// Health is a point-in-time snapshot of the engine's fault plane.
type Health struct {
	Shards      []ShardHealth
	Quarantined []string // ids of quarantined aggregates

	Panics           int64
	DegradedDrops    int64
	DegradedPasses   int64
	BadVerdicts      int64
	Overloaded       int64
	ControlFailovers int64

	// Overload is the overload plane's state (zero value when the plane
	// is disabled).
	Overload OverloadHealth
}

// Wedged reports whether any shard is currently classified Wedged.
func (h Health) Wedged() bool {
	for _, s := range h.Shards {
		if s.State == ShardWedged {
			return true
		}
	}
	return false
}

// Health snapshots the engine's fault plane: per-shard watchdog state and
// the engine-wide fault counters. It reads only atomics and the registry
// snapshot, so it is safe (and cheap) to call at any rate from any
// goroutine, including while the engine is saturated or closing.
func (e *Engine) Health() Health {
	now := time.Now().UnixNano()
	h := Health{
		Panics:           e.Panics.Load(),
		DegradedDrops:    e.DegradedDrops.Load(),
		DegradedPasses:   e.DegradedPasses.Load(),
		BadVerdicts:      e.BadVerdicts.Load(),
		Overloaded:       e.Overloaded.Load(),
		ControlFailovers: e.ControlFailovers.Load(),
		Overload:         e.overloadHealth(),
	}
	h.Shards = make([]ShardHealth, len(e.shards))
	for i, s := range e.shards {
		h.Shards[i] = ShardHealth{
			Shard:        i,
			State:        ShardState(s.state.Load()),
			QueueDepth:   len(s.in),
			QueueCap:     cap(s.in),
			HeartbeatAge: time.Duration(now - s.heartbeat.Load()),
			Busy:         s.busy.Load(),
			Processed:    s.processed.Load(),
			Panics:       s.panics.Load(),
			Shed:         s.shed.Load(),
		}
	}
	for _, agg := range e.table.Load().slots {
		if agg != nil && agg.quarantined.Load() {
			h.Quarantined = append(h.Quarantined, agg.id)
		}
	}
	return h
}

// watchdog periodically reclassifies every shard from its heartbeat age,
// ring depth, and fault-counter deltas. It shares the flusher's stop
// channel and exits at Close.
func (e *Engine) watchdog() {
	t := time.NewTicker(e.cfg.WatchdogInterval)
	defer t.Stop()
	lastPanics := make([]int64, len(e.shards))
	lastShed := make([]int64, len(e.shards))
	for {
		select {
		case <-e.flushStop:
			return
		case <-t.C:
			now := time.Now().UnixNano()
			for i, s := range e.shards {
				s.state.Store(int32(e.classify(s, now, &lastPanics[i], &lastShed[i])))
			}
			if e.overload != nil {
				e.updatePressure(now)
			}
		}
	}
}

// classify derives one shard's state. A shard is Wedged only when it has
// work (queued or in flight) and its heartbeat is stale — an idle shard's
// heartbeat goes stale legitimately. It is Degraded when it recovered a
// panic or shed load since the last check, or its ring is ≥3/4 full.
func (e *Engine) classify(s *shard, now int64, lastPanics, lastShed *int64) ShardState {
	depth := len(s.in) + len(s.ctrl)
	age := time.Duration(now - s.heartbeat.Load())
	working := depth > 0 || s.busy.Load()
	p, sh := s.panics.Load(), s.shed.Load()
	panicked, shed := p > *lastPanics, sh > *lastShed
	*lastPanics, *lastShed = p, sh
	switch {
	case working && age > e.cfg.WedgeTimeout:
		return ShardWedged
	case panicked || shed || len(s.in) >= cap(s.in)-cap(s.in)/4:
		return ShardDegraded
	default:
		return ShardHealthy
	}
}

// CloseReport describes how a Close went down.
type CloseReport struct {
	// Clean is true when every shard drained its ring and exited within
	// the deadline — the pre-fault-tolerance Close behaviour.
	Clean bool
	// AbandonedShards counts shard goroutines that did not exit within
	// the deadline and were force-abandoned (typically wedged in a
	// blocked Emit callback). Their goroutines are left behind; if they
	// ever unwedge they find empty rings and exit on the pending stop.
	AbandonedShards int
	// ShedPackets counts packets that were queued but discarded
	// unenforced during a forced shutdown (drained from the rings of
	// abandoned or queue-jumped shards).
	ShedPackets int64
}

// Close stops the engine within Config.CloseTimeout. Submitting after Close
// returns an error; packets from Submit calls racing Close may be silently
// discarded. Close is idempotent; concurrent and later calls return the
// first call's report.
//
// Shutdown is deadline-bounded and degrades in stages per shard: (1) a stop
// item is sent in-band on the ordered data ring, so a responsive shard
// drains everything accepted before Close; (2) if the ring stays full past
// the deadline's share, the stop jumps the queue via the priority control
// lane and the ring's remaining bursts are drained unenforced and counted
// as shed; (3) a shard that still does not exit (wedged in user code) is
// force-abandoned — Close returns anyway and reports it.
func (e *Engine) Close() CloseReport {
	e.mu.Lock()
	defer e.mu.Unlock()
	t := e.table.Load()
	if t.closed {
		return e.closeReport
	}
	// Publish the closed snapshot: subsequent datapath and control calls
	// fail fast without touching the shards.
	e.table.Store(&registry{closed: true, byID: map[string]Handle{}})
	close(e.flushStop) // stops the flusher and the watchdog
	// Flush staged bursts so everything accepted before Close is
	// enforced where the shard is still responsive.
	for _, s := range e.shards {
		e.flushStaged(s)
	}
	deadline := time.Now().Add(e.cfg.CloseTimeout)
	type result struct {
		exited bool
		jumped bool
		shed   int64
	}
	results := make([]result, len(e.shards))
	var wg sync.WaitGroup
	for i, s := range e.shards {
		wg.Add(1)
		go func(i int, s *shard) {
			defer wg.Done()
			r := &results[i]
			delivered := sendUntil(s.in, item{stop: true}, deadline)
			if !delivered {
				// Ring saturated: jump the queue on the control lane.
				r.jumped = true
				delivered = sendUntil(s.ctrl, item{stop: true}, deadline)
			}
			if delivered {
				r.exited = waitUntil(s.done, deadline)
			}
			if !r.exited || r.jumped {
				// The shard will not (or did not) drain its ring:
				// reclaim what is queued and count it as shed.
				r.shed = e.drainRing(s)
			}
		}(i, s)
	}
	wg.Wait()
	rep := CloseReport{Clean: true}
	for _, r := range results {
		if !r.exited {
			rep.AbandonedShards++
		}
		if !r.exited || r.jumped {
			rep.Clean = false
		}
		rep.ShedPackets += r.shed
	}
	e.closeReport = rep
	close(e.dead)
	return rep
}

// drainRing empties a shard's data ring without enforcing: bursts are
// counted as shed and pooled; control items are discarded un-run (their
// waiters are released by e.dead with an engine-closed error, never a
// false completion). Safe to run concurrently with a zombie consumer —
// both are channel receivers.
func (e *Engine) drainRing(s *shard) int64 {
	var pkts int64
	for {
		select {
		case it := <-s.in:
			if it.b != nil {
				pkts += int64(len(it.b.pkts))
				s.shed.Add(int64(len(it.b.pkts)))
				e.putBurst(it.b)
			}
		default:
			return pkts
		}
	}
}

// sendUntil offers it to ch until deadline; false means the deadline hit.
func sendUntil(ch chan item, it item, deadline time.Time) bool {
	select {
	case ch <- it:
		return true
	default:
	}
	d := time.Until(deadline)
	if d <= 0 {
		return false
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case ch <- it:
		return true
	case <-t.C:
		return false
	}
}

// waitUntil waits for ch to close until deadline; false means the deadline
// hit first.
func waitUntil(ch chan struct{}, deadline time.Time) bool {
	select {
	case <-ch:
		return true
	default:
	}
	d := time.Until(deadline)
	if d <= 0 {
		return false
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ch:
		return true
	case <-t.C:
		return false
	}
}
