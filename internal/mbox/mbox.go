// Package mbox implements a sharded middlebox engine that hosts many rate
// enforcers (one per traffic aggregate) concurrently — the deployment shape
// of the paper's middlebox, which polices thousands of subscribers at once.
//
// The datapath is burst-oriented and handle-based, the way a DPDK middlebox
// receives traffic: packets arrive in bursts (rx_burst ≈ 32), aggregates
// are identified by small integer handles resolved once at Add time, and
// the engine's hot path is a lock-free read of an atomically swapped
// copy-on-write registry snapshot — no mutex, no map lookup, no hashing,
// no allocation per packet.
//
// Aggregates are hashed across shards; each shard owns its aggregates
// exclusively and processes bursts on a single goroutine, so enforcers
// never need locks on the datapath (the same shared-nothing sharding a
// DPDK middlebox gets from RSS queues). Single-packet Submits are coalesced
// into per-shard pending bursts flushed on a size-or-deadline trigger;
// SubmitBatch hands a whole burst to the shard in one ring operation. Each
// shard ring slot carries a burst: when a shard falls behind, excess bursts
// are shed and counted as overload — a middlebox must shed load, not
// buffer unboundedly.
//
// Control operations (stats/flush) are serialized through the same shard
// goroutines, so they are safe during full-rate traffic; under saturation
// they fail over to a dedicated control lane so a wedged shard ring cannot
// stall the control plane behind data traffic.
package mbox

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"bcpqp/internal/enforcer"
	"bcpqp/internal/packet"
)

// Emit is called by a shard for every transmitted packet. CE-marked
// transmissions (AQM marking) arrive with pkt.CE set. Emit runs on the
// shard goroutine: it must not block and must not call back into the
// Engine (doing so can deadlock against a concurrent Close).
type Emit func(pkt packet.Packet)

// Handle identifies a registered aggregate on the datapath. Handles are
// resolved once at Add time and are valid until the aggregate is removed;
// they are never reused within one Engine, so a stale handle can never
// alias a different aggregate.
type Handle int32

// NoHandle is the invalid handle returned alongside errors.
const NoHandle Handle = -1

// ErrNoStats reports that an aggregate's enforcer does not implement
// enforcer.StatsReader. Test with errors.Is.
var ErrNoStats = errors.New("enforcer exposes no stats")

// ErrSaturated reports that a control operation could not reach its shard
// within ControlTimeout on either the ordered data ring or the priority
// control lane. Test with errors.Is.
var ErrSaturated = errors.New("shard saturated")

// Config configures an Engine.
type Config struct {
	// Shards is the number of shard goroutines (default GOMAXPROCS).
	Shards int
	// QueueDepth is each shard's ingress ring capacity in BURSTS
	// (default 1024). With the default FlushBurst of 32 a full ring
	// therefore holds up to 32× as many packets.
	QueueDepth int
	// FlushBurst is the target burst size: single-packet Submits are
	// coalesced per shard until the pending burst reaches this size
	// (default 32). 1 disables coalescing — every Submit enqueues
	// immediately.
	FlushBurst int
	// FlushInterval is the deadline trigger: a partially filled pending
	// burst is flushed at least this often by a background flusher, so a
	// trickle of traffic is never stranded in staging (default 500µs).
	FlushInterval time.Duration
	// ControlTimeout bounds how long a control operation (Stats/Flush)
	// waits for space on the ordered data ring before failing over to
	// the shard's priority control lane, and then how long it waits for
	// the lane itself (default 10ms).
	ControlTimeout time.Duration
	// Clock supplies the virtual time passed to enforcers; it is read
	// once per burst, not once per packet. The default is wall time
	// since engine start. Tests inject deterministic clocks.
	Clock func() time.Duration
}

// Engine hosts many enforcers behind a concurrent burst-submit API.
type Engine struct {
	cfg    Config
	shards []*shard

	// Overloaded counts packets shed because a shard ring was full.
	Overloaded atomic.Int64

	// table is the copy-on-write registry snapshot the datapath reads
	// lock-free. Writers (Add/Remove/Close) serialize on mu and publish
	// whole new snapshots.
	table atomic.Pointer[registry]
	mu    sync.Mutex

	pool      sync.Pool // *burst
	flushStop chan struct{}
	dead      chan struct{} // closed once every shard goroutine exited
	wg        sync.WaitGroup
}

// registry is one immutable snapshot of the aggregate table.
type registry struct {
	closed bool
	slots  []*aggregate      // indexed by Handle; nil = removed
	byID   map[string]Handle // compatibility shim for string-keyed lookup
}

// aggregate pairs an enforcer with its emit hook and owning shard.
type aggregate struct {
	id    string
	h     Handle
	enf   enforcer.Enforcer
	emit  Emit
	shard *shard
}

// burst is one ring slot of work: either a single-aggregate burst (agg set,
// from SubmitBatch) or a mixed coalesced burst (aggs parallel to pkts, from
// staged single-packet Submits). Bursts are pooled; the engine owns them.
type burst struct {
	pkts []packet.Packet
	aggs []*aggregate
	agg  *aggregate
}

// item is one unit of shard work.
type item struct {
	b *burst

	// Control messages.
	control func()
	done    chan struct{}
	stop    bool
}

// shard is one single-goroutine execution domain.
type shard struct {
	in   chan item // ordered data ring (bursts + in-band control)
	ctrl chan item // priority control lane used when in is saturated

	mu     sync.Mutex
	staged *burst // pending coalesced burst, nil when empty

	verdicts []enforcer.Verdict // consumer-side scratch, shard-owned
}

// New starts an Engine.
func New(cfg Config) *Engine {
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1024
	}
	if cfg.FlushBurst <= 0 {
		cfg.FlushBurst = enforcer.DefaultBurst
	}
	if cfg.FlushInterval <= 0 {
		cfg.FlushInterval = 500 * time.Microsecond
	}
	if cfg.ControlTimeout <= 0 {
		cfg.ControlTimeout = 10 * time.Millisecond
	}
	if cfg.Clock == nil {
		start := time.Now()
		cfg.Clock = func() time.Duration { return time.Since(start) }
	}
	e := &Engine{
		cfg:       cfg,
		flushStop: make(chan struct{}),
		dead:      make(chan struct{}),
	}
	e.pool.New = func() any {
		return &burst{
			pkts: make([]packet.Packet, 0, cfg.FlushBurst),
			aggs: make([]*aggregate, 0, cfg.FlushBurst),
		}
	}
	e.table.Store(&registry{byID: make(map[string]Handle)})
	for i := 0; i < cfg.Shards; i++ {
		s := &shard{
			in:       make(chan item, cfg.QueueDepth),
			ctrl:     make(chan item, 16),
			verdicts: make([]enforcer.Verdict, cfg.FlushBurst),
		}
		e.shards = append(e.shards, s)
		e.wg.Add(1)
		go e.run(s)
	}
	go e.flusher()
	return e
}

// run is a shard's event loop. The control lane is drained with equal
// priority; it only carries traffic when the data ring is saturated, which
// is exactly when jumping the queue is the point.
func (e *Engine) run(s *shard) {
	defer e.wg.Done()
	for {
		select {
		case it := <-s.in:
			if e.process(s, it) {
				return
			}
		case it := <-s.ctrl:
			if e.process(s, it) {
				return
			}
		}
	}
}

// process executes one item on the shard goroutine; true means stop.
func (e *Engine) process(s *shard, it item) bool {
	if it.stop {
		return true
	}
	if it.control != nil {
		it.control()
		if it.done != nil {
			close(it.done)
		}
		return false
	}
	b := it.b
	// One clock read per burst (vs per packet): every packet in the burst
	// is enforced at the same virtual arrival time, the granularity a
	// burst-polling middlebox actually observes.
	now := e.cfg.Clock()
	if b.agg != nil {
		e.runBatch(s, now, b.agg, b.pkts)
	} else {
		// Mixed coalesced burst: group consecutive same-aggregate runs
		// so each run goes through the enforcer's native batch path.
		for i := 0; i < len(b.pkts); {
			j := i + 1
			for j < len(b.pkts) && b.aggs[j] == b.aggs[i] {
				j++
			}
			e.runBatch(s, now, b.aggs[i], b.pkts[i:j])
			i = j
		}
	}
	e.putBurst(b)
	return false
}

// runBatch pushes one single-aggregate run through the enforcer's batch
// path (native when implemented, fallback loop otherwise) and emits the
// transmitted packets.
func (e *Engine) runBatch(s *shard, now time.Duration, agg *aggregate, pkts []packet.Packet) {
	if cap(s.verdicts) < len(pkts) {
		s.verdicts = make([]enforcer.Verdict, len(pkts))
	}
	v := s.verdicts[:len(pkts)]
	enforcer.SubmitBatch(agg.enf, now, pkts, v)
	if agg.emit == nil {
		return
	}
	for i, verdict := range v {
		switch verdict {
		case enforcer.Transmit:
			agg.emit(pkts[i])
		case enforcer.TransmitCE:
			pkts[i].CE = true
			agg.emit(pkts[i])
		}
	}
}

// flusher is the deadline trigger: it flushes every shard's pending
// coalesced burst at least once per FlushInterval so low-rate traffic is
// never stranded behind the size trigger.
func (e *Engine) flusher() {
	t := time.NewTicker(e.cfg.FlushInterval)
	defer t.Stop()
	for {
		select {
		case <-e.flushStop:
			return
		case <-t.C:
			for _, s := range e.shards {
				e.flushStaged(s)
			}
		}
	}
}

// flushStaged enqueues a shard's pending coalesced burst, if any. The
// enqueue happens under the staging lock so a producer that fills a fresh
// burst immediately afterwards cannot overtake the flushed one (per-
// producer FIFO is preserved).
func (e *Engine) flushStaged(s *shard) {
	s.mu.Lock()
	if b := s.staged; b != nil {
		s.staged = nil
		e.enqueue(s, b)
	}
	s.mu.Unlock()
}

// enqueue offers a burst to the shard ring without blocking: a full ring
// sheds the whole burst and counts it as overload.
func (e *Engine) enqueue(s *shard, b *burst) {
	select {
	case s.in <- item{b: b}:
	default:
		e.Overloaded.Add(int64(len(b.pkts)))
		e.putBurst(b)
	}
}

// getBurst takes a reset burst from the pool.
func (e *Engine) getBurst() *burst {
	return e.pool.Get().(*burst)
}

// putBurst clears a burst (dropping payload and aggregate references so
// the pool does not pin memory) and returns it to the pool.
func (e *Engine) putBurst(b *burst) {
	clear(b.pkts)
	clear(b.aggs)
	b.pkts = b.pkts[:0]
	b.aggs = b.aggs[:0]
	b.agg = nil
	e.pool.Put(b)
}

// shardFor hashes an aggregate ID onto a shard with an inline FNV-1a loop
// (no hasher allocation: the control path is allocation-free too).
func (e *Engine) shardFor(id string) *shard {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= prime32
	}
	return e.shards[int(h)%len(e.shards)]
}

// Add registers an enforcer for aggregate id and returns its datapath
// handle. The engine takes exclusive ownership of the enforcer: callers
// must not touch it afterwards (it runs on a shard goroutine). emit
// receives transmitted packets and may be nil.
func (e *Engine) Add(id string, enf enforcer.Enforcer, emit Emit) (Handle, error) {
	if enf == nil {
		return NoHandle, fmt.Errorf("mbox: nil enforcer for %q", id)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	t := e.table.Load()
	if t.closed {
		return NoHandle, fmt.Errorf("mbox: engine closed")
	}
	if _, dup := t.byID[id]; dup {
		return NoHandle, fmt.Errorf("mbox: aggregate %q already registered", id)
	}
	h := Handle(len(t.slots))
	agg := &aggregate{id: id, h: h, enf: enf, emit: emit, shard: e.shardFor(id)}
	nt := &registry{
		slots: append(append(make([]*aggregate, 0, len(t.slots)+1), t.slots...), agg),
		byID:  make(map[string]Handle, len(t.byID)+1),
	}
	for k, v := range t.byID {
		nt.byID[k] = v
	}
	nt.byID[id] = h
	e.table.Store(nt)
	return h, nil
}

// Remove unregisters an aggregate. In-flight packets already queued to the
// shard are still processed (the aggregate's state stays valid until they
// drain); the aggregate's handle becomes invalid for new submissions and is
// never reused.
func (e *Engine) Remove(id string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	t := e.table.Load()
	h, ok := t.byID[id]
	if !ok {
		return fmt.Errorf("mbox: unknown aggregate %q", id)
	}
	nt := &registry{
		closed: t.closed,
		slots:  append(make([]*aggregate, 0, len(t.slots)), t.slots...),
		byID:   make(map[string]Handle, len(t.byID)),
	}
	for k, v := range t.byID {
		if k != id {
			nt.byID[k] = v
		}
	}
	nt.slots[h] = nil
	e.table.Store(nt)
	return nil
}

// Lookup resolves an aggregate ID to its datapath handle.
func (e *Engine) Lookup(id string) (Handle, error) {
	t := e.table.Load()
	h, ok := t.byID[id]
	if !ok {
		return NoHandle, fmt.Errorf("mbox: unknown aggregate %q", id)
	}
	return h, nil
}

// Len returns the number of registered aggregates.
func (e *Engine) Len() int {
	return len(e.table.Load().byID)
}

// resolve is the datapath handle check: a lock-free snapshot read plus a
// bounds/liveness check.
func (e *Engine) resolve(h Handle) (*aggregate, error) {
	t := e.table.Load()
	if t.closed {
		return nil, fmt.Errorf("mbox: engine closed")
	}
	if h < 0 || int(h) >= len(t.slots) {
		return nil, fmt.Errorf("mbox: invalid handle %d", h)
	}
	agg := t.slots[h]
	if agg == nil {
		return nil, fmt.Errorf("mbox: handle %d: aggregate removed", h)
	}
	return agg, nil
}

// Submit hands one packet to the aggregate behind h. It never blocks: the
// packet joins the owning shard's pending burst (flushed on the size or
// deadline trigger), and when the shard ring is full the burst is shed and
// counted in Overloaded. Invalid handles report an error (misrouted
// traffic should be visible).
func (e *Engine) Submit(h Handle, pkt packet.Packet) error {
	agg, err := e.resolve(h)
	if err != nil {
		return err
	}
	s := agg.shard
	s.mu.Lock()
	b := s.staged
	if b == nil {
		b = e.getBurst()
		s.staged = b
	}
	b.pkts = append(b.pkts, pkt)
	b.aggs = append(b.aggs, agg)
	if len(b.pkts) >= e.cfg.FlushBurst {
		s.staged = nil
		e.enqueue(s, b)
	}
	s.mu.Unlock()
	return nil
}

// SubmitBatch hands a whole burst for one aggregate to its shard in a
// single ring operation — the engine's preferred ingress path. The packets
// are copied into an engine-owned pooled buffer, so the caller may reuse
// pkts immediately; steady-state burst submission performs no allocation.
// Any pending coalesced single-packet burst for the shard is flushed first
// so per-producer FIFO order holds across both APIs.
func (e *Engine) SubmitBatch(h Handle, pkts []packet.Packet) error {
	agg, err := e.resolve(h)
	if err != nil {
		return err
	}
	if len(pkts) == 0 {
		return nil
	}
	b := e.getBurst()
	b.agg = agg
	b.pkts = append(b.pkts, pkts...)
	s := agg.shard
	s.mu.Lock()
	if st := s.staged; st != nil {
		s.staged = nil
		e.enqueue(s, st)
	}
	e.enqueue(s, b)
	s.mu.Unlock()
	return nil
}

// SubmitID is the string-keyed compatibility shim for callers that have
// not resolved a handle: one map lookup against the same lock-free
// registry snapshot, then the Submit path.
//
// Deprecated: resolve a Handle once at Add/Lookup time and use Submit or
// SubmitBatch; per-packet string lookups are exactly the overhead the
// burst datapath removes.
func (e *Engine) SubmitID(id string, pkt packet.Packet) error {
	t := e.table.Load()
	if t.closed {
		return fmt.Errorf("mbox: engine closed")
	}
	h, ok := t.byID[id]
	if !ok {
		return fmt.Errorf("mbox: unknown aggregate %q", id)
	}
	return e.Submit(h, pkt)
}

// Stats reads an aggregate's enforcement statistics. The read executes on
// the owning shard goroutine, so it is safe during traffic. An enforcer
// that does not implement enforcer.StatsReader reports ErrNoStats instead
// of silently returning zeros.
func (e *Engine) Stats(id string) (enforcer.Stats, error) {
	var out enforcer.Stats
	var statErr error
	err := e.control(id, func(enf enforcer.Enforcer) {
		if sr, ok := enf.(enforcer.StatsReader); ok {
			out = sr.EnforcerStats()
		} else {
			statErr = fmt.Errorf("mbox: aggregate %q: %w", id, ErrNoStats)
		}
	})
	if err != nil {
		return out, err
	}
	return out, statErr
}

// Flush runs fn for aggregate id on its shard goroutine — the hook for
// periodic maintenance such as phantom Tick calls, executed race-free.
func (e *Engine) Flush(id string, fn func(enf enforcer.Enforcer)) error {
	return e.control(id, fn)
}

// control runs fn on the aggregate's shard goroutine and waits for it.
//
// The shard's pending coalesced burst is flushed first and the control
// item rides the ordered data ring, so fn observes every packet submitted
// before the call. When the data ring stays full past ControlTimeout
// (a saturated or wedged shard), the item fails over to the shard's
// dedicated control lane — jumping ahead of queued data is the price of
// not letting data traffic stall the control plane; if even the lane is
// full past the timeout, ErrSaturated is reported.
func (e *Engine) control(id string, fn func(enforcer.Enforcer)) error {
	t := e.table.Load()
	if t.closed {
		return fmt.Errorf("mbox: engine closed")
	}
	h, ok := t.byID[id]
	if !ok {
		return fmt.Errorf("mbox: unknown aggregate %q", id)
	}
	agg := t.slots[h]
	if agg == nil {
		return fmt.Errorf("mbox: unknown aggregate %q", id)
	}
	s := agg.shard
	e.flushStaged(s)
	done := make(chan struct{})
	it := item{control: func() { fn(agg.enf) }, done: done}

	timer := time.NewTimer(e.cfg.ControlTimeout)
	select {
	case s.in <- it:
		timer.Stop()
	case <-timer.C:
		// Ordered ring saturated: fail over to the priority lane.
		timer.Reset(e.cfg.ControlTimeout)
		select {
		case s.ctrl <- it:
			timer.Stop()
		case <-timer.C:
			return fmt.Errorf("mbox: aggregate %q: %w", id, ErrSaturated)
		}
	}
	select {
	case <-done:
		return nil
	case <-e.dead:
		// The engine closed while the item was in flight; it may still
		// have been processed during the drain.
		select {
		case <-done:
			return nil
		default:
			return fmt.Errorf("mbox: engine closed")
		}
	}
}

// Close drains the shards and stops their goroutines. Submitting after
// Close returns an error; packets from Submit calls racing Close may be
// silently discarded. Close is idempotent.
func (e *Engine) Close() {
	e.mu.Lock()
	t := e.table.Load()
	if t.closed {
		e.mu.Unlock()
		return
	}
	// Publish the closed snapshot: subsequent datapath and control calls
	// fail fast without touching the shards.
	e.table.Store(&registry{closed: true, byID: map[string]Handle{}})
	close(e.flushStop)
	// Flush staged bursts so everything accepted before Close is
	// enforced, then stop each shard in-band (FIFO ⇒ full drain).
	for _, s := range e.shards {
		e.flushStaged(s)
	}
	for _, s := range e.shards {
		s.in <- item{stop: true}
	}
	e.mu.Unlock()
	e.wg.Wait()
	close(e.dead)
}
