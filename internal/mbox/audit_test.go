package mbox

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bcpqp/internal/enforcer"
	"bcpqp/internal/faultinject"
	"bcpqp/internal/obs"
	"bcpqp/internal/packet"
	"bcpqp/internal/tbf"
	"bcpqp/internal/units"
)

// manualClock is a virtual clock the test sets explicitly: every engine
// read returns the last value stored, so the (now, bytes) tuples the
// auditor sees are fully under test control and a shadow obs.Audit fed the
// same tuples must agree bit-for-bit.
type manualClock struct{ ns atomic.Int64 }

func (c *manualClock) read() time.Duration { return time.Duration(c.ns.Load()) }
func (c *manualClock) set(d time.Duration) { c.ns.Store(int64(d)) }
func (c *manualClock) add(d time.Duration) { c.ns.Add(int64(d)) }

// TestAuditCleanRunZero: a conformant enforcer under a correctly declared
// envelope never trips the auditor — the acceptance criterion's clean run.
func TestAuditCleanRunZero(t *testing.T) {
	clk := &manualClock{}
	e := New(Config{Shards: 1, Clock: clk.read, QueueDepth: 1 << 12})
	defer e.Close()

	const rate = 8 * units.Mbps // 1 MB/s
	const bucket = 64 * units.MSS
	h, err := e.Add("clean", tbf.MustNew(rate, bucket), nil)
	if err != nil {
		t.Fatal(err)
	}
	// The declared envelope matches the enforcer: same rate, burst = the
	// token bucket's capacity (the enforcer can never admit more than
	// r·Δt + bucket by construction).
	if err := e.ArmAudit("clean", rate, bucket); err != nil {
		t.Fatal(err)
	}

	batch := make([]packet.Packet, 32)
	for i := range batch {
		batch[i] = pkt(i)
	}
	for i := 0; i < 200; i++ {
		clk.add(5 * time.Millisecond)
		if err := e.SubmitBatch(h, batch); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Stats("clean"); err != nil { // in-band barrier
		t.Fatal(err)
	}
	if v := e.AuditViolations(); v != 0 {
		t.Fatalf("clean run produced %d violations", v)
	}
	rep := e.AuditReport()
	if len(rep) != 1 || rep[0].Aggregate != "clean" || rep[0].Node != enforcer.NoNode {
		t.Fatalf("AuditReport = %+v", rep)
	}
	if rep[0].Counters.Violations != 0 || rep[0].Slack.Total() == 0 {
		t.Fatalf("report counters = %+v, slack total = %d", rep[0].Counters, rep[0].Slack.Total())
	}
}

// TestAuditInjectedOverAdmissionExact: a seeded over-admitting enforcer
// produces violations, and the count reconciles EXACTLY against a shadow
// auditor fed the engine's ground-truth (now, accepted) tuples — enforcer
// stats plus the injector's flipped bytes.
func TestAuditInjectedOverAdmissionExact(t *testing.T) {
	clk := &manualClock{}
	e := New(Config{Shards: 1, Clock: clk.read, QueueDepth: 1 << 12})
	defer e.Close()

	const rate = 8 * units.Mbps
	const bucket = 16 * units.MSS
	inj := faultinject.New(tbf.MustNew(rate, bucket), faultinject.Plan{
		Seed:      42,
		OverAdmit: 0.3,
	})
	h, err := e.Add("broken", inj, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.ArmAudit("broken", rate, bucket); err != nil {
		t.Fatal(err)
	}
	shadow := obs.NewAudit(clk.read(), int64(rate), bucket, 0)

	batch := make([]packet.Packet, 64)
	for i := range batch {
		batch[i] = pkt(i)
	}
	var prevAcc, prevFlip int64
	for i := 0; i < 300; i++ {
		// Saturate: the batch is ~96KB against a 5KB-per-ms allowance, so
		// the bucket drains and most verdicts are Drops — the raw
		// material the injector flips.
		clk.add(time.Millisecond)
		if err := e.SubmitBatch(h, batch); err != nil {
			t.Fatal(err)
		}
		st, err := e.Stats("broken") // barrier: the burst is audited
		if err != nil {
			t.Fatal(err)
		}
		flip := inj.OverAdmittedBytes.Load()
		accepted := (st.AcceptedBytes - prevAcc) + (flip - prevFlip)
		prevAcc, prevFlip = st.AcceptedBytes, flip
		shadow.Observe(clk.read(), accepted)
	}

	if inj.OverAdmittedBytes.Load() == 0 {
		t.Fatal("injector flipped nothing; the scenario is not exercising over-admission")
	}
	want := shadow.Snapshot()
	if want.Violations == 0 {
		t.Fatal("shadow auditor saw no violations; envelope not tight enough")
	}
	rep := e.AuditReport()
	if len(rep) != 1 {
		t.Fatalf("AuditReport has %d entries", len(rep))
	}
	got := rep[0].Counters
	if got.Violations != want.Violations {
		t.Fatalf("violations = %d, shadow predicts exactly %d", got.Violations, want.Violations)
	}
	if got.AcceptedBytes != want.AcceptedBytes || got.AllowedBytes != want.AllowedBytes ||
		got.MaxDeficit != want.MaxDeficit || got.MinSlackBytes != want.MinSlackBytes {
		t.Fatalf("auditor state diverged from shadow:\n got %+v\nwant %+v", got, want)
	}
	// The auditor's accepted bytes are exactly enforcer admissions plus
	// injected flips — nothing double counted, nothing lost.
	st, err := e.Stats("broken")
	if err != nil {
		t.Fatal(err)
	}
	if got.AcceptedBytes != st.AcceptedBytes+inj.OverAdmittedBytes.Load() {
		t.Fatalf("accepted reconciliation: audit %d != enforcer %d + flipped %d",
			got.AcceptedBytes, st.AcceptedBytes, inj.OverAdmittedBytes.Load())
	}
}

// TestAuditRebaseNoFalsePositives: live SetRate churn on a conformant
// aggregate never trips the auditor — the envelope rebase rides the same
// in-band closure as the enforcer change.
func TestAuditRebaseNoFalsePositives(t *testing.T) {
	clk := &manualClock{}
	e := New(Config{Shards: 1, Clock: clk.read, QueueDepth: 1 << 12})
	defer e.Close()

	rate := 8 * units.Mbps
	const bucket = 64 * units.MSS
	h, err := e.Add("churn", tbf.MustNew(rate, bucket), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.ArmAudit("churn", rate, bucket); err != nil {
		t.Fatal(err)
	}
	batch := make([]packet.Packet, 48)
	for i := range batch {
		batch[i] = pkt(i)
	}
	for i := 0; i < 150; i++ {
		clk.add(2 * time.Millisecond)
		if err := e.SubmitBatch(h, batch); err != nil {
			t.Fatal(err)
		}
		if i%10 == 9 {
			// Halve/double the rate live; the enforcer and the envelope
			// change together, so enforced traffic stays conformant.
			if i%20 == 9 {
				rate = 2 * units.Mbps
			} else {
				rate = 16 * units.Mbps
			}
			if err := e.SetRate("churn", rate); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := e.Stats("churn"); err != nil {
		t.Fatal(err)
	}
	if v := e.AuditViolations(); v != 0 {
		t.Fatalf("rate churn produced %d false violations", v)
	}
	if rep := e.AuditReport(); rep[0].Counters.RateBps != int64(rate) {
		t.Fatalf("envelope rate = %d, want %d after last SetRate", rep[0].Counters.RateBps, int64(rate))
	}
}

// TestAuditTreeRollup: interior node bounds are audited independently of
// leaves — a leaf-conformant workload that exceeds an interior envelope is
// flagged at the interior node, attributed by node id and label, while the
// leaf auditors stay clean.
func TestAuditTreeRollup(t *testing.T) {
	clk := &manualClock{}
	e := New(Config{Shards: 1, Clock: clk.read, QueueDepth: 1 << 12})
	defer e.Close()

	h, err := e.AddTree("tenant", newTestTree(), nil) // 20 Mbps link over subA/subB
	if err != nil {
		t.Fatal(err)
	}
	// The link admits up to 20 Mbps, but audit it against a deliberately
	// understated 1 Mbps envelope: the tree is "violating" the declared
	// interior bound even though each leaf is generously enveloped.
	if err := e.ArmNodeAudit("tenant", 0, 1*units.Mbps, units.MSS); err != nil {
		t.Fatal(err)
	}
	if err := e.ArmNodeAudit("tenant", 1, 100*units.Mbps, 1<<20); err != nil {
		t.Fatal(err)
	}
	if err := e.ArmAudit("tenant", 100*units.Mbps, 1<<20); err != nil {
		t.Fatal(err)
	}
	if err := e.ArmNodeAudit("tenant", 99, units.Mbps, 0); !errors.Is(err, ErrBadNode) {
		t.Fatalf("out-of-range node arm: %v, want ErrBadNode", err)
	}

	lh, err := e.Leaf(h, 1)
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]packet.Packet, 64)
	for i := range batch {
		batch[i] = pkt(i)
	}
	for i := 0; i < 100; i++ {
		clk.add(time.Millisecond)
		if err := e.SubmitLeafBatch(lh, batch); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Stats("tenant"); err != nil {
		t.Fatal(err)
	}

	rep := e.AuditReport()
	byNode := map[enforcer.NodeID]AuditEntry{}
	for _, ent := range rep {
		byNode[ent.Node] = ent
	}
	link, leaf, whole := byNode[0], byNode[1], byNode[enforcer.NoNode]
	if link.Counters.Violations == 0 {
		t.Fatalf("interior link envelope not flagged: %+v", link.Counters)
	}
	if link.NodeLabel != "link" {
		t.Fatalf("interior entry label = %q", link.NodeLabel)
	}
	if leaf.Counters.Violations != 0 {
		t.Fatalf("leaf envelope false-flagged: %+v", leaf.Counters)
	}
	if whole.Counters.Violations != 0 {
		t.Fatalf("whole-aggregate envelope false-flagged: %+v", whole.Counters)
	}
	// The leaf and the interior node audited the same admitted bytes
	// (every accepted packet entered at subA's leaf and passed the link).
	if leaf.Counters.AcceptedBytes != link.Counters.AcceptedBytes ||
		whole.Counters.AcceptedBytes != link.Counters.AcceptedBytes {
		t.Fatalf("chain accounting split: link %d, leaf %d, whole %d",
			link.Counters.AcceptedBytes, leaf.Counters.AcceptedBytes, whole.Counters.AcceptedBytes)
	}
	if link.Counters.AcceptedBytes == 0 {
		t.Fatal("no bytes audited; workload never reached the tree")
	}
}

// TestAuditMetricsExport: armed auditors surface in Metrics() — the
// conformance families plus the always-on inline ring-bypass counters.
func TestAuditMetricsExport(t *testing.T) {
	clk := &manualClock{}
	e := New(Config{Shards: 1, Clock: clk.read, QueueDepth: 1 << 12})
	defer e.Close()
	h, err := e.Add("m", tbf.MustNew(units.Mbps, 4*units.MSS), nil)
	if err != nil {
		t.Fatal(err)
	}

	// Unarmed: no conformance families, but inline counters always export.
	names := map[string]int{}
	for _, f := range e.Metrics().Families {
		names[f.Name] = len(f.Samples)
	}
	if _, ok := names["bcpqp_inline_bursts_total"]; !ok {
		t.Fatal("bcpqp_inline_bursts_total missing from export")
	}
	if _, ok := names["bcpqp_inline_fallbacks_total"]; !ok {
		t.Fatal("bcpqp_inline_fallbacks_total missing from export")
	}
	if _, ok := names["bcpqp_conformance_violations_total"]; ok {
		t.Fatal("conformance families exported with nothing armed")
	}

	if err := e.ArmAudit("m", units.Mbps/10, 0); err != nil { // understated: violates
		t.Fatal(err)
	}
	batch := make([]packet.Packet, 32)
	for i := range batch {
		batch[i] = pkt(i)
	}
	clk.add(time.Millisecond)
	if err := e.SubmitBatch(h, batch); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Stats("m"); err != nil {
		t.Fatal(err)
	}
	var vio float64
	found := map[string]bool{}
	for _, f := range e.Metrics().Families {
		found[f.Name] = true
		if f.Name == "bcpqp_conformance_violations_total" {
			for _, s := range f.Samples {
				vio += s.Value
			}
		}
	}
	for _, want := range []string{
		"bcpqp_conformance_violations_total", "bcpqp_conformance_envelope_bps",
		"bcpqp_conformance_slack_bytes", "bcpqp_conformance_min_slack_bytes",
		"bcpqp_conformance_max_deficit_bytes", "bcpqp_conformance_windows_total",
		"bcpqp_conformance_slack_distribution_bytes", "bcpqp_conformance_rate_error_permille",
	} {
		if !found[want] {
			t.Fatalf("family %s missing from export", want)
		}
	}
	if vio == 0 {
		t.Fatal("deliberate violation did not light bcpqp_conformance_violations_total")
	}
}

// TestAuditChurnReconciliation is the -race chaos test: concurrent
// submitters, live rate churn, scrapes and an over-admitting injector, and
// at quiesce the auditor's accepted bytes still reconcile exactly against
// enforcer stats + injector ground truth (no audited byte lost or double
// counted under concurrency).
func TestAuditChurnReconciliation(t *testing.T) {
	clk := &fakeClock{step: 10 * time.Microsecond}
	e := New(Config{Shards: 2, Clock: clk.now, QueueDepth: 1 << 14})
	defer e.Close()

	const rate = 8 * units.Mbps
	inj := faultinject.New(tbf.MustNew(rate, 16*units.MSS), faultinject.Plan{
		Seed:      7,
		OverAdmit: 0.1,
	})
	h, err := e.Add("racy", inj, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.ArmAudit("racy", rate, 16*units.MSS); err != nil {
		t.Fatal(err)
	}

	var producers, scraper sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		producers.Add(1)
		go func(w int) {
			defer producers.Done()
			batch := make([]packet.Packet, 16)
			for i := range batch {
				batch[i] = pkt(w*16 + i)
			}
			for i := 0; i < 400; i++ {
				if err := e.SubmitBatch(h, batch); err != nil {
					return
				}
			}
		}(w)
	}
	producers.Add(1)
	go func() { // control churn: rebases race the datapath
		defer producers.Done()
		rates := []units.Rate{4 * units.Mbps, 12 * units.Mbps, 8 * units.Mbps}
		for i := 0; i < 60; i++ {
			if err := e.SetRate("racy", rates[i%len(rates)]); err != nil {
				return
			}
		}
	}()
	scraper.Add(1)
	go func() { // scrapes race everything
		defer scraper.Done()
		for {
			select {
			case <-stop:
				return
			default:
				e.Metrics()
				e.AuditReport()
			}
		}
	}()
	producers.Wait()
	close(stop)
	scraper.Wait()

	st, err := e.Stats("racy") // barrier: every queued burst audited
	if err != nil {
		t.Fatal(err)
	}
	rep := e.AuditReport()
	if len(rep) != 1 {
		t.Fatalf("AuditReport has %d entries", len(rep))
	}
	got := rep[0].Counters.AcceptedBytes
	want := st.AcceptedBytes + inj.OverAdmittedBytes.Load()
	if got != want {
		t.Fatalf("audited accepted bytes %d != enforcer %d + injected flips %d",
			got, st.AcceptedBytes, inj.OverAdmittedBytes.Load())
	}
	if got == 0 {
		t.Fatal("no bytes audited")
	}
}
