package mbox

import (
	"strconv"
	"strings"
	"time"

	"bcpqp/internal/enforcer"
	"bcpqp/internal/obs"
)

// TraceEvent is one flight-recorder event with the aggregate handle
// resolved back to its string id where possible.
type TraceEvent struct {
	obs.Event
	// AggID is the aggregate's id when its handle still resolves against
	// the current registry; empty for engine-level events and for
	// aggregates removed or evicted since the event was recorded.
	AggID string
	// NodePath is the root→node label path ("tenant/plan/sub") of the
	// event's tree node when the event is node-attributed (Node >= 0) and
	// the aggregate still resolves to a tree; empty otherwise.
	NodePath string
}

// nodePath renders the root→node label path. Topology accessors are
// immutable after construction, so this is safe against a live tree.
func nodePath(tree enforcer.TreeEnforcer, node enforcer.NodeID) string {
	if int(node) < 0 || int(node) >= tree.NumNodes() {
		return ""
	}
	var labels []string
	for v := node; v != enforcer.NoNode; v = tree.Parent(v) {
		labels = append(labels, tree.NodeLabel(v))
	}
	for i, j := 0, len(labels)-1; i < j; i, j = i+1, j-1 {
		labels[i], labels[j] = labels[j], labels[i]
	}
	return strings.Join(labels, "/")
}

// TraceDump snapshots every flight-recorder ring without stopping the
// datapath and returns the merged events ordered by global sequence,
// oldest first. Writers are never blocked: each ring slot is read through
// a seqlock and slots caught mid-write are discarded. It returns nil when
// the engine has no Observer.
func (e *Engine) TraceDump() []TraceEvent {
	c := e.cfg.Observer
	if c == nil {
		return nil
	}
	evs := c.Events()
	t := e.table.Load()
	out := make([]TraceEvent, len(evs))
	for i, ev := range evs {
		te := TraceEvent{Event: ev}
		if h := Handle(ev.Agg); h > 0 && h.slot() < len(t.slots) {
			if agg := t.slots[h.slot()]; agg != nil && agg.h == h {
				te.AggID = agg.id
				if agg.tree != nil && ev.Node >= 0 {
					te.NodePath = nodePath(agg.tree, enforcer.NodeID(ev.Node))
				}
			}
		}
		out[i] = te
	}
	return out
}

// Metrics builds a point-in-time export snapshot of the engine: the
// engine-wide fault counters, per-shard health gauges, per-aggregate
// traffic and fault state, and the merged burst-enforcement latency
// histogram. It reads only atomics and registry snapshots (the same data
// Health reads), so it is safe to call at any scrape rate during full-rate
// traffic. Families derived from the Observer (traffic counters, rate
// meters, the latency histogram, trace totals) are omitted when the engine
// has none; fault-plane families are always present.
func (e *Engine) Metrics() obs.Snapshot {
	var fams []obs.Family
	counter := func(name, help string, v float64) {
		fams = append(fams, obs.Family{Name: name, Help: help, Type: "counter",
			Samples: []obs.Sample{{Value: v}}})
	}
	gauge := func(name, help string, v float64) {
		fams = append(fams, obs.Family{Name: name, Help: help, Type: "gauge",
			Samples: []obs.Sample{{Value: v}}})
	}

	t := e.table.Load()
	gauge("bcpqp_aggregates", "registered aggregates", float64(len(t.byID)))
	counter("bcpqp_panics_total", "recovered enforcer/emit panics", float64(e.Panics.Load()))
	counter("bcpqp_degraded_drops_total", "packets dropped for quarantined fail-closed aggregates", float64(e.DegradedDrops.Load()))
	counter("bcpqp_degraded_passes_total", "packets passed unenforced for quarantined fail-open aggregates", float64(e.DegradedPasses.Load()))
	counter("bcpqp_bad_verdicts_total", "out-of-range verdicts coerced to drop", float64(e.BadVerdicts.Load()))
	counter("bcpqp_overloaded_packets_total", "packets shed at full shard rings", float64(e.Overloaded.Load()))
	counter("bcpqp_control_failovers_total", "control operations that failed over to the priority lane", float64(e.ControlFailovers.Load()))
	counter("bcpqp_evicted_total", "aggregates evicted by the idle-TTL sweeper", float64(e.Evicted.Load()))
	counter("bcpqp_inline_bursts_total", "bursts enforced through the ring-bypass fast path", float64(e.InlineBursts.Load()))
	counter("bcpqp_inline_fallbacks_total", "ring-bypass submissions that fell back to shedding on a wedged shard", float64(e.InlineFallbacks.Load()))

	if p := e.overload; p != nil {
		active := 0.0
		if p.active.Load() {
			active = 1
		}
		gauge("bcpqp_overload_pressure", "composite overload pressure: max of ring occupancy, table fill and shed-rate components", float64(p.pressureMilli.Load())/1000)
		gauge("bcpqp_overload_active", "1 while the overload shed plane is engaged", active)
		gauge("bcpqp_overload_ring_pressure", "worst shard ring occupancy fraction", float64(p.ringMilli.Load())/1000)
		gauge("bcpqp_overload_table_fill", "aggregate table fill fraction of MaxAggregates", float64(p.fillMilli.Load())/1000)
		gauge("bcpqp_overload_shed_rate_pps", "shed-rate EWMA over the 250ms window, packets/sec", float64(p.shedRate.Load()))
		counter("bcpqp_overload_shed_packets_total", "packets shed proactively by the priority shed policy", float64(e.OverloadShed.Load()))
		counter("bcpqp_overload_admission_evictions_total", "aggregates evicted on the Add path to admit new ones", float64(e.AdmissionEvictions.Load()))
		counter("bcpqp_overload_transitions_total", "overload plane activation and deactivation edges", float64(p.transitions.Load()))
	}

	now := time.Now().UnixNano()
	shardFams := []obs.Family{
		{Name: "bcpqp_shard_state", Help: "watchdog state (0 healthy, 1 degraded, 2 wedged)", Type: "gauge"},
		{Name: "bcpqp_shard_queue_depth", Help: "bursts queued on the ordered data ring", Type: "gauge"},
		{Name: "bcpqp_shard_heartbeat_age_seconds", Help: "time since the shard last made progress", Type: "gauge"},
		{Name: "bcpqp_shard_processed_total", Help: "items completed by the shard", Type: "counter"},
		{Name: "bcpqp_shard_panics_total", Help: "panics recovered on the shard", Type: "counter"},
		{Name: "bcpqp_shard_shed_packets_total", Help: "packets shed at the shard ring", Type: "counter"},
	}
	for i, s := range e.shards {
		lbl := []obs.Label{{Name: "shard", Value: strconv.Itoa(i)}}
		vals := []float64{
			float64(s.state.Load()),
			float64(len(s.in)),
			float64(now-s.heartbeat.Load()) / 1e9,
			float64(s.processed.Load()),
			float64(s.panics.Load()),
			float64(s.shed.Load()),
		}
		for j := range shardFams {
			shardFams[j].Samples = append(shardFams[j].Samples,
				obs.Sample{Labels: lbl, Value: vals[j]})
		}
	}
	fams = append(fams, shardFams...)

	aggFams := []obs.Family{
		{Name: "bcpqp_aggregate_quarantined", Help: "1 when the aggregate's circuit breaker is open", Type: "gauge"},
		{Name: "bcpqp_aggregate_panics_total", Help: "recovered panics attributed to the aggregate", Type: "counter"},
		{Name: "bcpqp_aggregate_shed_packets_total", Help: "packets shed proactively from the aggregate by the overload plane", Type: "counter"},
		{Name: "bcpqp_aggregate_accepted_packets_total", Help: "packets the enforcer admitted", Type: "counter"},
		{Name: "bcpqp_aggregate_accepted_bytes_total", Help: "bytes the enforcer admitted", Type: "counter"},
		{Name: "bcpqp_aggregate_dropped_packets_total", Help: "packets the enforcer rejected", Type: "counter"},
		{Name: "bcpqp_aggregate_dropped_bytes_total", Help: "bytes the enforcer rejected", Type: "counter"},
		{Name: "bcpqp_aggregate_rate_bps", Help: "accepted throughput over the last measurement window", Type: "gauge"},
	}
	const nFault = 3 // families exported even without per-aggregate obs
	for _, agg := range t.slots {
		if agg == nil {
			continue
		}
		lbl := []obs.Label{{Name: "aggregate", Value: agg.id}}
		q := 0.0
		if agg.quarantined.Load() {
			q = 1
		}
		vals := []float64{q, float64(agg.panics.Load()), float64(agg.shed.Load())}
		if agg.obs != nil {
			s := agg.obs.Snapshot()
			vals = append(vals,
				float64(s.AcceptedPackets), float64(s.AcceptedBytes),
				float64(s.DroppedPackets), float64(s.DroppedBytes),
				s.Rate)
		}
		for j := range vals {
			aggFams[j].Samples = append(aggFams[j].Samples,
				obs.Sample{Labels: lbl, Value: vals[j]})
		}
	}
	if e.cfg.Observer != nil {
		fams = append(fams, aggFams...)
	} else {
		fams = append(fams, aggFams[:nFault]...)
	}

	fams = append(fams, e.auditFamilies(t)...)

	if c := e.cfg.Observer; c != nil {
		counter("bcpqp_trace_events_total", "flight-recorder events recorded (including overwritten)", float64(c.EventsRecorded()))
		counter("bcpqp_bursts_enforced_total", "enforced bursts observed across all shards", float64(c.Bursts()))
		h := c.BurstHist()
		fams = append(fams, obs.Family{
			Name:    "bcpqp_burst_enforce_seconds",
			Help:    "per-burst enforcement latency on the shard goroutines",
			Type:    "histogram",
			Samples: []obs.Sample{{Hist: &h}},
		})
		ld := c.BurstLatencyDigest().Hist(1e-9)
		fams = append(fams, obs.Family{
			Name:    "bcpqp_burst_enforce_latency_digest_seconds",
			Help:    "per-burst enforcement latency as a mergeable relative-error quantile digest",
			Type:    "histogram",
			Samples: []obs.Sample{{Hist: &ld}},
		})
	}

	e.extraMu.Lock()
	sources := e.extraMetrics
	e.extraMu.Unlock()
	for _, src := range sources {
		fams = append(fams, src()...)
	}
	return obs.Snapshot{Families: fams}
}

// auditFamilies builds the conformance-audit metric families: one sample
// per armed auditor (whole-aggregate envelopes labelled {aggregate},
// per-node envelopes {aggregate,node,path}) plus the slack and rate-error
// quantile digests merged across every armed auditor. Empty when nothing
// is armed, so unaudited deployments pay nothing in exposition size.
func (e *Engine) auditFamilies(t *registry) []obs.Family {
	af := []obs.Family{
		{Name: "bcpqp_conformance_violations_total", Help: "audited runs that breached the Theorem-1 envelope r*dt+B", Type: "counter"},
		{Name: "bcpqp_conformance_envelope_bps", Help: "audited envelope rate", Type: "gauge"},
		{Name: "bcpqp_conformance_allowed_bytes_total", Help: "allowance accrued by the audited envelope, excluding the burst term", Type: "counter"},
		{Name: "bcpqp_conformance_accepted_bytes_total", Help: "bytes accepted under audit", Type: "counter"},
		{Name: "bcpqp_conformance_slack_bytes", Help: "current envelope slack including the burst allowance (negative = in breach)", Type: "gauge"},
		{Name: "bcpqp_conformance_min_slack_bytes", Help: "worst envelope slack ever observed", Type: "gauge"},
		{Name: "bcpqp_conformance_max_deficit_bytes", Help: "deepest envelope breach observed", Type: "gauge"},
		{Name: "bcpqp_conformance_windows_total", Help: "completed rate-error measurement windows with traffic", Type: "counter"},
	}
	slackAcc, errAcc := obs.NewDigest(), obs.NewDigest()
	armed := 0
	add := func(lbl []obs.Label, a *obs.Audit) {
		armed++
		c := a.Snapshot()
		a.MergeSlack(slackAcc)
		a.MergeRateErr(errAcc)
		vals := []float64{
			float64(c.Violations), float64(c.RateBps),
			float64(c.AllowedBytes), float64(c.AcceptedBytes),
			float64(c.SlackBytes), float64(c.MinSlackBytes),
			float64(c.MaxDeficit), float64(c.Windows),
		}
		for j := range vals {
			af[j].Samples = append(af[j].Samples, obs.Sample{Labels: lbl, Value: vals[j]})
		}
	}
	for _, agg := range t.slots {
		if agg == nil {
			continue
		}
		au := agg.audit.Load()
		if au == nil {
			continue
		}
		if au.whole != nil {
			add([]obs.Label{{Name: "aggregate", Value: agg.id}}, au.whole)
		}
		for n, a := range au.nodes {
			if a == nil {
				continue
			}
			lbl := []obs.Label{
				{Name: "aggregate", Value: agg.id},
				{Name: "node", Value: strconv.Itoa(n)},
			}
			if agg.tree != nil {
				lbl = append(lbl, obs.Label{Name: "path", Value: nodePath(agg.tree, enforcer.NodeID(n))})
			}
			add(lbl, a)
		}
	}
	if armed == 0 {
		return nil
	}
	sh := slackAcc.Snapshot().Hist(1)
	eh := errAcc.Snapshot().Hist(1)
	return append(af,
		obs.Family{Name: "bcpqp_conformance_slack_distribution_bytes",
			Help: "per-run envelope slack across all armed auditors (breaching runs record 0)",
			Type: "histogram", Samples: []obs.Sample{{Hist: &sh}}},
		obs.Family{Name: "bcpqp_conformance_rate_error_permille",
			Help: "per-window absolute rate error across all armed auditors, permille of the enforced rate",
			Type: "histogram", Samples: []obs.Sample{{Hist: &eh}}},
	)
}

// AttachMetricSource registers an additional metric-family source whose
// output Metrics appends to every snapshot — how layered subsystems (the
// cluster budget exchange) join the engine's /metrics exposition without
// the engine depending on them. Sources must be safe to call from any
// goroutine and are never detached.
func (e *Engine) AttachMetricSource(src func() []obs.Family) {
	if src == nil {
		return
	}
	e.extraMu.Lock()
	e.extraMetrics = append(e.extraMetrics, src)
	e.extraMu.Unlock()
}

// maxNodeMetricSamples bounds how many nodes one NodeMetrics call exports:
// a million-leaf tree cannot ship a million label sets to a scraper. Nodes
// are exported in index order — topological, parents before children — and
// leaves are skipped entirely when the tree exceeds the cap, so the upper
// layers (tenant, plan) always make the cut and the truncation is visible
// through bcpqp_tree_nodes vs bcpqp_tree_nodes_exported.
const maxNodeMetricSamples = 1024

// NodeMetrics builds an export snapshot of one aggregate's per-node
// accounting: per-node accepted/dropped counters labelled with the node
// index and its root→node label path, plus tree-size gauges. Unlike
// Metrics — which reads only atomics and is safe at any scrape rate — the
// node counters live in the tree's shard-owned arrays, so this read rides
// an in-band control barrier: it is consistent (a point-in-time cut
// between bursts, reflecting every packet submitted before the call) but
// costs one shard round-trip and should be scraped accordingly. A flat
// aggregate exports its single enforcer as node 0.
func (e *Engine) NodeMetrics(id string) (obs.Snapshot, error) {
	agg, err := e.aggByID(id)
	if err != nil {
		return obs.Snapshot{}, err
	}
	type row struct {
		node  int32
		path  string
		stats enforcer.Stats
	}
	var rows []row
	total := 1
	err = e.controlAgg(agg, func(enf enforcer.Enforcer) {
		tree := agg.tree
		if tree == nil {
			if sr, ok := enf.(enforcer.StatsReader); ok {
				rows = append(rows, row{node: 0, path: id, stats: sr.EnforcerStats()})
			}
			return
		}
		n := tree.NumNodes()
		total = n
		skipLeaves := n > maxNodeMetricSamples
		for i := 0; i < n && len(rows) < maxNodeMetricSamples; i++ {
			node := enforcer.NodeID(i)
			if skipLeaves && tree.IsLeaf(node) {
				continue
			}
			st, serr := tree.NodeStats(node)
			if serr != nil {
				continue
			}
			rows = append(rows, row{node: int32(i), path: nodePath(tree, node), stats: st})
		}
	})
	if err != nil {
		return obs.Snapshot{}, err
	}
	aggLbl := obs.Label{Name: "aggregate", Value: id}
	fams := []obs.Family{
		{Name: "bcpqp_tree_nodes", Help: "nodes in the aggregate's policy tree", Type: "gauge",
			Samples: []obs.Sample{{Labels: []obs.Label{aggLbl}, Value: float64(total)}}},
		{Name: "bcpqp_tree_nodes_exported", Help: "nodes included in this per-node export", Type: "gauge",
			Samples: []obs.Sample{{Labels: []obs.Label{aggLbl}, Value: float64(len(rows))}}},
		{Name: "bcpqp_node_accepted_packets_total", Help: "packets admitted through the node's subtree", Type: "counter"},
		{Name: "bcpqp_node_accepted_bytes_total", Help: "bytes admitted through the node's subtree", Type: "counter"},
		{Name: "bcpqp_node_dropped_packets_total", Help: "packets dropped attributed to the node", Type: "counter"},
		{Name: "bcpqp_node_dropped_bytes_total", Help: "bytes dropped attributed to the node", Type: "counter"},
	}
	for _, r := range rows {
		lbl := []obs.Label{aggLbl,
			{Name: "node", Value: strconv.Itoa(int(r.node))},
			{Name: "path", Value: r.path}}
		vals := []float64{
			float64(r.stats.AcceptedPackets), float64(r.stats.AcceptedBytes),
			float64(r.stats.DroppedPackets), float64(r.stats.DroppedBytes),
		}
		for j := range vals {
			fams[2+j].Samples = append(fams[2+j].Samples, obs.Sample{Labels: lbl, Value: vals[j]})
		}
	}
	return obs.Snapshot{Families: fams}, nil
}
