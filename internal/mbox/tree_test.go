package mbox

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"bcpqp/internal/obs"
	"bcpqp/internal/packet"
	"bcpqp/internal/ptree"
	"bcpqp/internal/tbf"
	"bcpqp/internal/units"
)

// newTestTree builds the canonical 2-level tree used across these tests:
// a 20 Mbps link ceiling over two 5 Mbps-assured subscribers.
func newTestTree() *ptree.Tree {
	return ptree.MustNew([]ptree.NodeSpec{
		{Name: "link", Parent: -1, Stage: tbf.MustNew(20*units.Mbps, units.BDPBytes(20*units.Mbps, 100*time.Millisecond))},
		{Name: "subA", Parent: 0, Assured: 5 * units.Mbps},
		{Name: "subB", Parent: 0, Assured: 5 * units.Mbps},
	})
}

func TestAddTreeAndLeafResolution(t *testing.T) {
	e := New(Config{Shards: 1})
	defer e.Close()
	h, err := e.AddTree("tenant", newTestTree(), nil)
	if err != nil {
		t.Fatal(err)
	}

	// In-range nodes mint handles carrying their node address.
	lh, err := e.Leaf(h, 1)
	if err != nil {
		t.Fatal(err)
	}
	if lh.Aggregate() != h || lh.Node() != 1 {
		t.Errorf("Leaf(h, 1) = (%v, %d)", lh.Aggregate(), lh.Node())
	}
	// Out-of-range nodes fail with the typed sentinel.
	if _, err := e.Leaf(h, 99); !errors.Is(err, ErrBadNode) {
		t.Errorf("Leaf(h, 99): %v, want ErrBadNode", err)
	}
	if _, err := e.Leaf(h, -2); !errors.Is(err, ErrBadNode) {
		t.Errorf("Leaf(h, -2): %v, want ErrBadNode", err)
	}

	// A flat aggregate unifies as the one-node tree: node 0 is the
	// enforcer, everything else is ErrBadNode.
	fh, err := e.Add("flat", tbf.MustNew(units.Mbps, 10*units.MSS), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Leaf(fh, 0); err != nil {
		t.Errorf("flat Leaf(h, 0): %v", err)
	}
	if _, err := e.Leaf(fh, 1); !errors.Is(err, ErrBadNode) {
		t.Errorf("flat Leaf(h, 1): %v, want ErrBadNode", err)
	}

	// A stale aggregate handle invalidates every leaf handle at once.
	if _, err := e.Remove("tenant"); err != nil {
		t.Fatal(err)
	}
	if err := e.SubmitLeaf(lh, pkt(0)); !errors.Is(err, ErrStale) {
		t.Errorf("stale leaf submit: %v, want ErrStale", err)
	}
	if err := e.SubmitLeafBatch(lh, []packet.Packet{pkt(0)}); !errors.Is(err, ErrStale) {
		t.Errorf("stale leaf batch: %v, want ErrStale", err)
	}
}

// TestLeafSubmissionRoutesToNodes: node-addressed ingress lands on the
// right tree nodes — per-node accounting shows each subscriber's traffic
// where it entered, and the engine's emitted stream reflects the tree's
// verdicts.
func TestLeafSubmissionRoutesToNodes(t *testing.T) {
	clock := &fakeClock{step: 500 * time.Microsecond}
	e := New(Config{Shards: 1, Clock: clock.now})
	defer e.Close()
	var emitted atomic.Int64
	h, err := e.AddTree("tenant", newTestTree(), func(p packet.Packet) {
		emitted.Add(1)
	})
	if err != nil {
		t.Fatal(err)
	}
	lhA, _ := e.Leaf(h, 1)
	lhB, _ := e.Leaf(h, 2)

	// Interleave coalesced single submits with batches so same-node runs
	// are grouped and cross-node boundaries split correctly.
	batch := make([]packet.Packet, 8)
	for i := range batch {
		batch[i] = pkt(i)
	}
	const rounds = 50
	for i := 0; i < rounds; i++ {
		if err := e.SubmitLeafBatch(lhA, batch); err != nil {
			t.Fatal(err)
		}
		if err := e.SubmitLeaf(lhB, pkt(i)); err != nil {
			t.Fatal(err)
		}
		if err := e.SubmitLeaf(lhB, pkt(i+1)); err != nil {
			t.Fatal(err)
		}
	}

	stA, err := e.NodeStats("tenant", 1)
	if err != nil {
		t.Fatal(err)
	}
	stB, err := e.NodeStats("tenant", 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := stA.AcceptedPackets + stA.DroppedPackets; got != rounds*8 {
		t.Errorf("subA saw %d packets, want %d", got, rounds*8)
	}
	if got := stB.AcceptedPackets + stB.DroppedPackets; got != rounds*2 {
		t.Errorf("subB saw %d packets, want %d", got, rounds*2)
	}
	// The root's subtree accounting covers every admitted packet; drops
	// stay attributed to the node that rejected (here the entry leaves,
	// once they outrun their assured shares).
	root, err := e.NodeStats("tenant", 0)
	if err != nil {
		t.Fatal(err)
	}
	if root.AcceptedPackets != stA.AcceptedPackets+stB.AcceptedPackets {
		t.Errorf("root accepted %d, leaves accepted %d+%d",
			root.AcceptedPackets, stA.AcceptedPackets, stB.AcceptedPackets)
	}
	if got := emitted.Load(); got != root.AcceptedPackets {
		t.Errorf("emitted %d packets, tree accepted %d", got, root.AcceptedPackets)
	}

	// Node-addressed control errors carry the sentinels through the
	// in-band path.
	if _, err := e.NodeStats("tenant", 99); !errors.Is(err, ErrBadNode) {
		t.Errorf("NodeStats(99): %v, want ErrBadNode", err)
	}
	if err := e.SetNodeRate("tenant", 1, units.Mbps); !errors.Is(err, ErrNotReconfigurable) {
		t.Errorf("SetNodeRate(assured leaf): %v, want ErrNotReconfigurable", err)
	}
}

// TestSetNodeRateInBand: a hot interior ceiling change lands between
// bursts and the enforcement rate actually changes.
func TestSetNodeRateInBand(t *testing.T) {
	clock := &fakeClock{step: time.Millisecond}
	e := New(Config{Shards: 1, Clock: clock.now})
	defer e.Close()
	tr := newTestTree()
	h, err := e.AddTree("tenant", tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	lh, _ := e.Leaf(h, 1)
	if err := e.SetNodeRate("tenant", 0, 2*units.Mbps); err != nil {
		t.Fatal(err)
	}
	// Push well past the new 2 Mbps root ceiling; the barrier in
	// NodeStats guarantees we read post-burst state.
	for i := 0; i < 4000; i++ {
		if err := e.SubmitLeaf(lh, pkt(i)); err != nil {
			t.Fatal(err)
		}
	}
	st, err := e.NodeStats("tenant", 0)
	if err != nil {
		t.Fatal(err)
	}
	// Virtual time advances 1 ms per engine clock read; the run spans at
	// most a few seconds of virtual time. With the ceiling at 2 Mbps the
	// tree cannot have accepted anywhere near all 4000 MSS packets
	// (~48 Mbit); 10 s of 2 Mbps + burst is a generous upper bound.
	bound := (2 * units.Rate(units.Mbps)).Bytes(10*time.Second) + float64(units.BDPBytes(20*units.Mbps, 100*time.Millisecond))
	if f := float64(st.AcceptedBytes); f > bound {
		t.Errorf("accepted %d bytes after SetNodeRate(2 Mbps), want ≤ %.0f", st.AcceptedBytes, bound)
	}
	if st.DroppedPackets == 0 {
		t.Error("no drops after tightening the root ceiling")
	}
}

// TestNodeMetricsExport: per-node counters export with node and path
// labels; flat aggregates export as node 0.
func TestNodeMetricsExport(t *testing.T) {
	e := New(Config{Shards: 1, Clock: func() time.Duration { return 0 }})
	defer e.Close()
	h, err := e.AddTree("tenant", newTestTree(), nil)
	if err != nil {
		t.Fatal(err)
	}
	lh, _ := e.Leaf(h, 1)
	for i := 0; i < 10; i++ {
		if err := e.SubmitLeaf(lh, pkt(i)); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := e.NodeMetrics("tenant")
	if err != nil {
		t.Fatal(err)
	}
	var nodes, exported float64
	var sawPath bool
	var accA float64
	for _, f := range snap.Families {
		switch f.Name {
		case "bcpqp_tree_nodes":
			nodes = f.Samples[0].Value
		case "bcpqp_tree_nodes_exported":
			exported = f.Samples[0].Value
		case "bcpqp_node_accepted_packets_total":
			for _, s := range f.Samples {
				var node, path string
				for _, l := range s.Labels {
					switch l.Name {
					case "node":
						node = l.Value
					case "path":
						path = l.Value
					}
				}
				if path == "link/subA" {
					sawPath = true
					if node != "1" {
						t.Errorf("link/subA exported as node %s", node)
					}
					accA = s.Value
				}
			}
		}
	}
	if nodes != 3 || exported != 3 {
		t.Errorf("tree_nodes = %v exported = %v, want 3/3", nodes, exported)
	}
	if !sawPath {
		t.Error("no sample with path label link/subA")
	}
	if accA == 0 {
		t.Error("subA accepted counter is zero after traffic")
	}

	// Flat aggregate: one node-0 row labelled with the aggregate id.
	if _, err := e.Add("flat", tbf.MustNew(units.Mbps, 10*units.MSS), nil); err != nil {
		t.Fatal(err)
	}
	fsnap, err := e.NodeMetrics("flat")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fsnap.Families {
		if f.Name == "bcpqp_tree_nodes" && f.Samples[0].Value != 1 {
			t.Errorf("flat tree_nodes = %v, want 1", f.Samples[0].Value)
		}
	}
}

// TestTraceNodePath: flight-recorder burst events carry the entry node,
// and TraceDump resolves it to the root→node label path.
func TestTraceNodePath(t *testing.T) {
	c := obs.NewCollector(obs.Options{SampleEvery: 1})
	e := New(Config{Shards: 1, Observer: c, Clock: func() time.Duration { return 0 }})
	defer e.Close()
	h, err := e.AddTree("tenant", newTestTree(), nil)
	if err != nil {
		t.Fatal(err)
	}
	lh, _ := e.Leaf(h, 2)
	if err := e.SubmitLeafBatch(lh, []packet.Packet{pkt(0), pkt(1)}); err != nil {
		t.Fatal(err)
	}
	// Barrier: NodeStats rides the control lane behind the burst.
	if _, err := e.NodeStats("tenant", 2); err != nil {
		t.Fatal(err)
	}
	var sawNodeBurst bool
	for _, ev := range e.TraceDump() {
		if ev.Kind == obs.KindBurst && ev.AggID == "tenant" && ev.Node == 2 {
			sawNodeBurst = true
			if ev.NodePath != "link/subB" {
				t.Errorf("burst NodePath = %q, want link/subB", ev.NodePath)
			}
		}
	}
	if !sawNodeBurst {
		t.Error("no node-attributed burst event for tenant node 2")
	}
}

// TestTreeSnapshotThroughEngine: a tree aggregate's state snapshots and
// restores through the engine's BQSN surface like any flat aggregate.
func TestTreeSnapshotThroughEngine(t *testing.T) {
	clock := &fakeClock{step: time.Millisecond}
	e := New(Config{Shards: 1, Clock: clock.now})
	defer e.Close()
	h, err := e.AddTree("tenant", newTestTree(), nil)
	if err != nil {
		t.Fatal(err)
	}
	lh, _ := e.Leaf(h, 1)
	for i := 0; i < 500; i++ {
		if err := e.SubmitLeaf(lh, pkt(i)); err != nil {
			t.Fatal(err)
		}
	}
	before, err := e.NodeStats("tenant", 0)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := e.SnapshotAggregate("tenant")
	if err != nil {
		t.Fatal(err)
	}

	// Restore onto a fresh engine hosting an identically configured tree.
	e2 := New(Config{Shards: 1, Clock: clock.now})
	defer e2.Close()
	if _, err := e2.AddTree("tenant", newTestTree(), nil); err != nil {
		t.Fatal(err)
	}
	if err := e2.RestoreAggregate("tenant", blob); err != nil {
		t.Fatal(err)
	}
	after, err := e2.NodeStats("tenant", 0)
	if err != nil {
		t.Fatal(err)
	}
	if before != after {
		t.Errorf("restored node stats %+v, want %+v", after, before)
	}
}

// TestNodePathHelper: path rendering against the tree's own labels.
func TestNodePathHelper(t *testing.T) {
	tr := newTestTree()
	if got := nodePath(tr, 1); got != "link/subA" {
		t.Errorf("nodePath(1) = %q", got)
	}
	if got := nodePath(tr, 0); got != "link" {
		t.Errorf("nodePath(0) = %q", got)
	}
	if got := nodePath(tr, 99); got != "" {
		t.Errorf("nodePath(99) = %q, want empty", got)
	}
	if s := strings.Count(nodePath(tr, 2), "/"); s != 1 {
		t.Errorf("nodePath depth wrong: %q", nodePath(tr, 2))
	}
}
