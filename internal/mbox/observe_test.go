package mbox

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"bcpqp/internal/enforcer"
	"bcpqp/internal/obs"
	"bcpqp/internal/packet"
	"bcpqp/internal/tbf"
	"bcpqp/internal/units"
)

// metricValue extracts one sample from a metrics snapshot: the sample of
// family name whose first label value is labelVal ("" for unlabeled).
func metricValue(t *testing.T, snap obs.Snapshot, name, labelVal string) float64 {
	t.Helper()
	for _, f := range snap.Families {
		if f.Name != name {
			continue
		}
		for _, s := range f.Samples {
			if labelVal == "" && len(s.Labels) == 0 {
				return s.Value
			}
			if len(s.Labels) > 0 && s.Labels[0].Value == labelVal {
				return s.Value
			}
		}
	}
	t.Fatalf("metric %s{%q} not found", name, labelVal)
	return 0
}

func TestObserveVerdictTally(t *testing.T) {
	c := obs.NewCollector(obs.Options{SampleEvery: 1})
	// Frozen clock: the bucket never refills, so of a 4-packet burst
	// exactly bucket/MSS packets pass and the rest drop.
	e := New(Config{Shards: 1, Observer: c, Clock: func() time.Duration { return 0 }})
	defer e.Close()
	h, err := e.Add("a", tbf.MustNew(units.Mbps, 2*units.MSS), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SubmitBatch(h, []packet.Packet{pkt(0), pkt(1), pkt(2), pkt(3)}); err != nil {
		t.Fatal(err)
	}
	// Stats rides the ordered ring behind the burst: once it returns, the
	// burst has been enforced and tallied.
	st, err := e.Stats("a")
	if err != nil {
		t.Fatal(err)
	}
	snap := e.Metrics()
	acc := metricValue(t, snap, "bcpqp_aggregate_accepted_packets_total", "a")
	drp := metricValue(t, snap, "bcpqp_aggregate_dropped_packets_total", "a")
	if int64(acc) != st.AcceptedPackets || int64(drp) != st.DroppedPackets {
		t.Errorf("tally (acc=%g, drp=%g) disagrees with enforcer stats %+v", acc, drp, st)
	}
	if acc+drp != 4 {
		t.Errorf("tally covers %g packets, want 4", acc+drp)
	}
	if drp == 0 {
		t.Error("tiny frozen bucket dropped nothing")
	}
	accB := metricValue(t, snap, "bcpqp_aggregate_accepted_bytes_total", "a")
	if int64(accB) != int64(acc)*int64(units.MSS) {
		t.Errorf("accepted bytes = %g, want %g×MSS", accB, acc)
	}

	// The sampled (SampleEvery=1) KindBurst event carries the same tally.
	var burst *TraceEvent
	for i, ev := range e.TraceDump() {
		if ev.Kind == obs.KindBurst {
			burst = &e.TraceDump()[i]
			break
		}
	}
	if burst == nil {
		t.Fatal("no KindBurst event in trace with SampleEvery=1")
	}
	if burst.AggID != "a" {
		t.Errorf("burst event AggID = %q, want %q", burst.AggID, "a")
	}
	if burst.A != int64(acc) || burst.B != int64(drp) {
		t.Errorf("burst event tally A=%d B=%d, want %g/%g", burst.A, burst.B, acc, drp)
	}
	if hs := c.BurstHist(); hs.Count == 0 {
		t.Error("burst latency histogram is empty after an enforced burst")
	}
}

// bombEnforcer panics on every Submit.
type bombEnforcer struct{}

func (bombEnforcer) Submit(time.Duration, packet.Packet) enforcer.Verdict {
	panic("observe: injected fault")
}

func TestTraceDumpLifecycleKinds(t *testing.T) {
	c := obs.NewCollector(obs.Options{SampleEvery: 1})
	e := New(Config{Shards: 1, Observer: c})
	defer e.Close()

	if _, err := e.Add("victim", bombEnforcer{}, nil); err != nil {
		t.Fatal(err)
	}
	hv, _ := e.Lookup("victim")
	if err := e.SubmitBatch(hv, []packet.Packet{pkt(0)}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if q, err := e.Quarantined("victim"); err == nil && q {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("victim never quarantined")
		}
		time.Sleep(time.Millisecond)
	}
	if err := e.Reinstate("victim"); err != nil {
		t.Fatal(err)
	}

	if _, err := e.Add("plan", tbf.MustNew(units.Mbps, 10*units.MSS), nil); err != nil {
		t.Fatal(err)
	}
	if err := e.SetRate("plan", 2*units.Mbps); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Remove("plan"); err != nil {
		t.Fatal(err)
	}

	want := map[obs.Kind]bool{
		obs.KindPanic:      false,
		obs.KindQuarantine: false,
		obs.KindReinstate:  false,
		obs.KindRateUpdate: false,
		obs.KindRemove:     false,
	}
	for _, ev := range e.TraceDump() {
		if _, ok := want[ev.Kind]; ok {
			want[ev.Kind] = true
		}
	}
	for k, seen := range want {
		if !seen {
			t.Errorf("trace missing %v event", k)
		}
	}

	// The quarantine event's aggregate resolves while registered; the
	// removed aggregate's handle must NOT resolve (no slot aliasing).
	for _, ev := range e.TraceDump() {
		switch ev.Kind {
		case obs.KindQuarantine:
			if ev.AggID != "victim" {
				t.Errorf("quarantine event AggID = %q, want victim", ev.AggID)
			}
		case obs.KindRemove:
			if ev.AggID != "" && ev.AggID != "plan" {
				t.Errorf("remove event resolved to wrong aggregate %q", ev.AggID)
			}
		}
	}
}

func TestMetricsPrometheusExport(t *testing.T) {
	c := obs.NewCollector(obs.Options{SampleEvery: 1})
	e := New(Config{Shards: 2, Observer: c})
	defer e.Close()
	h, err := e.Add("sub \"42\"", tbf.MustNew(units.Mbps, 10*units.MSS), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SubmitBatch(h, []packet.Packet{pkt(0)}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Stats("sub \"42\""); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := obs.WritePrometheus(&buf, e.Metrics()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE bcpqp_aggregates gauge",
		"bcpqp_shard_state{shard=\"0\"}",
		"bcpqp_shard_state{shard=\"1\"}",
		`bcpqp_aggregate_accepted_packets_total{aggregate="sub \"42\""} 1`,
		"# TYPE bcpqp_burst_enforce_seconds histogram",
		"bcpqp_burst_enforce_seconds_count",
		"bcpqp_trace_events_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestMetricsWithoutObserver(t *testing.T) {
	e := New(Config{Shards: 1})
	defer e.Close()
	if _, err := e.Add("a", tbf.MustNew(units.Mbps, 10*units.MSS), nil); err != nil {
		t.Fatal(err)
	}
	snap := e.Metrics()
	if v := metricValue(t, snap, "bcpqp_aggregates", ""); v != 1 {
		t.Errorf("bcpqp_aggregates = %g, want 1", v)
	}
	if v := metricValue(t, snap, "bcpqp_aggregate_quarantined", "a"); v != 0 {
		t.Errorf("quarantined gauge = %g, want 0", v)
	}
	for _, f := range snap.Families {
		if f.Name == "bcpqp_burst_enforce_seconds" || f.Name == "bcpqp_aggregate_rate_bps" {
			t.Errorf("observer-derived family %s exported without an Observer", f.Name)
		}
	}
	if e.TraceDump() != nil {
		t.Error("TraceDump without Observer should be nil")
	}
}

// TestObserveConcurrentChurn is the -race guarantee: Health, TraceDump,
// Metrics, Stats (including the ErrNoStats path) and SubmitBatch all run
// concurrently against a churning registry. Nothing may race, and no
// reader may observe a half-published aggregate (every error from Stats
// on a churned id is one of the published outcomes, never junk).
func TestObserveConcurrentChurn(t *testing.T) {
	c := obs.NewCollector(obs.Options{SampleEvery: 4, RingDepth: 256})
	e := New(Config{Shards: 2, Observer: c, QueueDepth: 1 << 12})
	defer e.Close()

	steady, err := e.Add("steady", tbf.MustNew(8*units.Mbps, 100*units.MSS), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Add("mute", statlessEnforcer{}, nil); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	start := func(fn func()) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					fn()
				}
			}
		}()
	}

	// Churn: add/remove a fresh aggregate as fast as possible.
	var churnN int
	start(func() {
		id := fmt.Sprintf("churn-%d", churnN)
		churnN++
		h, err := e.Add(id, tbf.MustNew(units.Mbps, 10*units.MSS), nil)
		if err != nil {
			t.Error(err)
			return
		}
		_ = e.SubmitBatch(h, []packet.Packet{pkt(churnN)})
		if _, err := e.Remove(id); err != nil {
			t.Error(err)
		}
	})
	// Traffic on the steady aggregate.
	start(func() {
		_ = e.SubmitBatch(steady, []packet.Packet{pkt(0), pkt(1), pkt(2), pkt(3)})
	})
	// Health / trace / metrics scrapers.
	start(func() {
		h := e.Health()
		if len(h.Shards) != 2 {
			t.Errorf("Health shards = %d", len(h.Shards))
		}
	})
	start(func() {
		for _, ev := range e.TraceDump() {
			if ev.Seq == 0 {
				t.Error("trace event with zero sequence (torn read leaked)")
			}
		}
	})
	start(func() {
		var buf bytes.Buffer
		if err := obs.WritePrometheus(&buf, e.Metrics()); err != nil {
			t.Error(err)
		}
	})
	// Stats: the steady aggregate must always resolve; the stats-less one
	// must always report exactly ErrNoStats.
	start(func() {
		if _, err := e.Stats("steady"); err != nil && !errors.Is(err, ErrSaturated) {
			t.Errorf("steady stats: %v", err)
		}
		if _, err := e.Stats("mute"); err == nil ||
			(!errors.Is(err, ErrNoStats) && !errors.Is(err, ErrSaturated)) {
			t.Errorf("mute stats: %v, want ErrNoStats", err)
		}
	})

	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
}
