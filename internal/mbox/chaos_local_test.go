package mbox

// Chaos coverage for the ring-bypass fast path: inline submitters must
// interleave race-free with the ring path on the same shard, in-band
// control churn (SetRate / Stats / Add / Remove), injected enforcer panics
// and quarantine, and a bounded Close — with every counter reconciling
// exactly against what was submitted and what the injector reports.
// Runs under -race in the CI chaos job.

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bcpqp/internal/faultinject"
	"bcpqp/internal/packet"
	"bcpqp/internal/tbf"
	"bcpqp/internal/units"
)

func TestChaosLocalRunToCompletionChurn(t *testing.T) {
	clock := &fakeClock{step: 20 * time.Microsecond}
	e := New(Config{
		Shards:         2,
		QueueDepth:     1 << 12, // deep enough that the ring never sheds: conservation stays exact
		Clock:          clock.now,
		PanicThreshold: 3,
		ControlTimeout: 2 * time.Second,
		CloseTimeout:   10 * time.Second,
	})
	closed := false
	defer func() {
		if !closed {
			e.Close()
		}
	}()

	const (
		bursts   = 600
		burstLen = 8
		rate     = 8 * units.Mbps
		bucket   = int64(100 * units.MSS)
	)

	// Shard 0 carries the contended mix: two inline submitters (one clean,
	// one panicking) and a ring producer. Shard 1 proves inline submitters
	// on distinct shards run independently.
	inj := faultinject.New(tbf.MustNew(rate, bucket), faultinject.Plan{Seed: 11, Panic: 0.02})
	hClean, err := e.AddPinned("inline-clean", 0, tbf.MustNew(rate, bucket), func(packet.Packet) {})
	if err != nil {
		t.Fatal(err)
	}
	hFaulty, err := e.AddPinned("inline-faulty", 0, inj, func(packet.Packet) {})
	if err != nil {
		t.Fatal(err)
	}
	hRing, err := e.AddPinned("ring", 0, tbf.MustNew(rate, bucket), func(packet.Packet) {})
	if err != nil {
		t.Fatal(err)
	}
	hOther, err := e.AddPinned("inline-other", 1, tbf.MustNew(rate, bucket), func(packet.Packet) {})
	if err != nil {
		t.Fatal(err)
	}

	// One LocalSubmitter per producer goroutine (they are single-goroutine
	// objects); two of them contend for shard 0's occupancy word.
	type inlineProducer struct {
		h         Handle
		submitted atomic.Int64 // packets through successful inline submits
		inline    atomic.Int64 // successful inline submits (bursts)
		shed      atomic.Int64 // packets rejected ErrSaturated
	}
	producers := map[string]*inlineProducer{
		"inline-clean":  {h: hClean},
		"inline-faulty": {h: hFaulty},
		"inline-other":  {h: hOther},
	}
	var wg sync.WaitGroup
	for id, p := range producers {
		wg.Add(1)
		go func(id string, p *inlineProducer) {
			defer wg.Done()
			ls, err := e.Local(p.h)
			if err != nil {
				t.Error(err)
				return
			}
			for b := 0; b < bursts; b++ {
				burst := burstOf(burstLen, b)
				switch err := ls.SubmitBatch(p.h, burst); {
				case err == nil:
					p.submitted.Add(burstLen)
					p.inline.Add(1)
				case errors.Is(err, ErrSaturated):
					p.shed.Add(burstLen)
				default:
					t.Errorf("%s inline submit: %v", id, err)
					return
				}
			}
		}(id, p)
	}
	var ringSubmitted atomic.Int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		for b := 0; b < bursts; b++ {
			if err := e.SubmitBatch(hRing, burstOf(burstLen, b)); err != nil {
				t.Errorf("ring submit: %v", err)
				return
			}
			ringSubmitted.Add(burstLen)
		}
	}()
	// Control churn against the same shards the inline submitters hold:
	// rate flips, stats polls, and Add/Remove of short-lived aggregates.
	churnStop := make(chan struct{})
	var churnWG sync.WaitGroup
	churnWG.Add(1)
	go func() {
		defer churnWG.Done()
		for i := 0; ; i++ {
			select {
			case <-churnStop:
				return
			default:
			}
			if err := e.SetRate("inline-clean", rate+units.Rate(i%5)*units.Mbps); err != nil && !errors.Is(err, ErrSaturated) {
				t.Errorf("SetRate during churn: %v", err)
				return
			}
			if _, err := e.Stats("ring"); err != nil && !errors.Is(err, ErrSaturated) {
				t.Errorf("Stats during churn: %v", err)
				return
			}
			id := fmt.Sprintf("churn-%d", i%8)
			if h, err := e.AddPinned(id, i%2, tbf.MustNew(rate, bucket), nil); err == nil {
				_ = e.Submit(h, pkt(i))
				if _, err := e.Remove(id); err != nil && !errors.Is(err, ErrSaturated) {
					t.Errorf("Remove during churn: %v", err)
					return
				}
			}
		}
	}()

	wg.Wait()
	close(churnStop)
	churnWG.Wait()

	// Barrier every surviving aggregate so enforcer stats and fault
	// records are final, then reconcile exactly.
	for id, p := range producers {
		st, err := e.Stats(id)
		if err != nil {
			t.Fatalf("Stats(%s): %v", id, err)
		}
		fr, err := e.Faults(id)
		if err != nil {
			t.Fatalf("Faults(%s): %v", id, err)
		}
		// The injector panics before the wrapped enforcer runs and a
		// quarantined aggregate never reaches it, so every submitted
		// packet is either enforced (accepted/dropped) or degraded.
		if got := st.AcceptedPackets + st.DroppedPackets + fr.DegradedDrops; got != p.submitted.Load() {
			t.Errorf("%s: enforced %d + degraded %d = %d packets, want %d submitted",
				id, st.AcceptedPackets+st.DroppedPackets, fr.DegradedDrops, got, p.submitted.Load())
		}
		if p.shed.Load() != 0 {
			t.Errorf("%s: %d packets hit ErrSaturated with a %v occupancy timeout — occupancy word wedged",
				id, p.shed.Load(), e.cfg.ControlTimeout)
		}
	}
	if st, err := e.Stats("ring"); err != nil {
		t.Fatalf("Stats(ring): %v", err)
	} else if got := st.AcceptedPackets + st.DroppedPackets; got != ringSubmitted.Load() {
		t.Errorf("ring aggregate enforced %d packets, want %d", got, ringSubmitted.Load())
	}

	injPanics := inj.Panics.Load()
	if got := e.Panics.Load(); got != injPanics {
		t.Errorf("engine recovered %d panics, injector injected %d", got, injPanics)
	}
	if injPanics < int64(e.cfg.PanicThreshold) {
		t.Errorf("injector panicked only %d times — chaos too tame to prove the inline panic barrier", injPanics)
	} else if fr, err := e.Faults("inline-faulty"); err != nil || !fr.Quarantined {
		t.Errorf("inline-faulty quarantine = %+v, %v; want quarantined via inline panics", fr, err)
	}

	var inlineOK int64
	for _, p := range producers {
		inlineOK += p.inline.Load()
	}
	if got := e.InlineBursts.Load(); got != inlineOK {
		t.Errorf("InlineBursts = %d, want %d successful inline submits", got, inlineOK)
	}

	start := time.Now()
	rep := e.Close()
	closed = true
	if !rep.Clean {
		t.Errorf("close report not clean after chaos: %+v", rep)
	}
	if d := time.Since(start); d > e.cfg.CloseTimeout {
		t.Errorf("Close took %v, beyond the %v deadline", d, e.cfg.CloseTimeout)
	}
}
