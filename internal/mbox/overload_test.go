package mbox

import (
	"errors"
	"sync"
	"testing"
	"time"

	"bcpqp/internal/enforcer"
	"bcpqp/internal/obs"
	"bcpqp/internal/packet"
	"bcpqp/internal/tbf"
	"bcpqp/internal/units"
)

// waitFor polls cond up to timeout; false on deadline.
func waitFor(timeout time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(time.Millisecond)
	}
	return cond()
}

func TestHarmonicLevels(t *testing.T) {
	const depth = 1024
	levels := harmonicLevels(4, depth)
	// Class 0 carries the never-shed sentinel.
	if levels[0] != 0 {
		t.Fatalf("levels[0] = %d, want 0 (never shed)", levels[0])
	}
	// Ceilings decrease with class, and even the last class keeps a
	// non-zero ceiling (never starved).
	for c := 2; c < len(levels); c++ {
		if levels[c] >= levels[c-1] {
			t.Fatalf("levels not decreasing: levels[%d]=%d ≥ levels[%d]=%d",
				c, levels[c], c-1, levels[c-1])
		}
	}
	if last := levels[len(levels)-1]; last < 1 {
		t.Fatalf("lowest class starved: ceiling %d", last)
	}
	// Spot-check the harmonic fractions for C=4, H=1+1/2+1/3+1/4=25/12:
	// F_1 = (1/2+1/3+1/4)/H = 13/25, F_2 = (1/3+1/4)/H = 7/25,
	// F_3 = (1/4)/H = 3/25.
	wants := []int32{0, 13 * depth / 25, 7 * depth / 25, 3 * depth / 25}
	for c, want := range wants {
		got := levels[c]
		if got < want-1 || got > want+1 {
			t.Errorf("levels[%d] = %d, want ≈%d", c, got, want)
		}
	}
	// Degenerate single-class config: nothing sheds proactively.
	if got := harmonicLevels(1, depth); len(got) != 1 || got[0] != 0 {
		t.Errorf("harmonicLevels(1) = %v, want [0]", got)
	}
}

func TestOverloadConfigDefaults(t *testing.T) {
	c := OverloadConfig{Enabled: true}.withDefaults(800 * time.Millisecond)
	if c.Classes != 4 || c.DefaultClass != 0 {
		t.Errorf("classes/default = %d/%d, want 4/0", c.Classes, c.DefaultClass)
	}
	if c.PressureHi != 0.75 || c.PressureLo >= c.PressureHi || c.PressureLo <= 0 {
		t.Errorf("hysteresis band [%v, %v] malformed", c.PressureLo, c.PressureHi)
	}
	if c.Window != 250*time.Millisecond {
		t.Errorf("window = %v, want the paper's 250ms", c.Window)
	}
	if c.MinIdleTTL != 100*time.Millisecond {
		t.Errorf("MinIdleTTL = %v, want IdleTTL/8 = 100ms", c.MinIdleTTL)
	}
	if c.AdmissionTTL != c.MinIdleTTL {
		t.Errorf("AdmissionTTL = %v, want MinIdleTTL", c.AdmissionTTL)
	}
}

func TestShedClassAPI(t *testing.T) {
	// Disabled plane: class operations are refused, health is zero.
	e := New(Config{Shards: 1})
	if _, err := e.Add("a", tbf.MustNew(units.Mbps, 10*units.MSS), nil); err != nil {
		t.Fatal(err)
	}
	if err := e.SetShedClass("a", 1); err == nil {
		t.Error("SetShedClass accepted on a plane-less engine")
	}
	if h := e.Health(); h.Overload.Enabled {
		t.Error("Health reports overload enabled on a plane-less engine")
	}
	e.Close()

	e = New(Config{Shards: 1, Overload: OverloadConfig{Enabled: true, DefaultClass: 2}})
	defer e.Close()
	if _, err := e.Add("a", tbf.MustNew(units.Mbps, 10*units.MSS), nil); err != nil {
		t.Fatal(err)
	}
	if got, _ := e.ShedClass("a"); got != 2 {
		t.Errorf("default shed class = %d, want 2", got)
	}
	if err := e.SetShedClass("a", 3); err != nil {
		t.Fatal(err)
	}
	if got, _ := e.ShedClass("a"); got != 3 {
		t.Errorf("shed class = %d after SetShedClass(3)", got)
	}
	if err := e.SetShedClass("a", 4); err == nil {
		t.Error("out-of-range class accepted")
	}
	if err := e.SetShedClass("nope", 1); err == nil {
		t.Error("unknown aggregate accepted")
	}
	if h := e.Health(); !h.Overload.Enabled || h.Overload.Active {
		t.Errorf("Overload health = %+v, want enabled and inactive", h.Overload)
	}
}

// TestPriorityShedUnderPressure wedges a shard, lets the watchdog engage the
// plane off ring pressure, and proves the shed policy is class-aware: the
// shed-first aggregate is dropped before the ring while the shed-last one
// still reaches the ring (and its enforcer, once unwedged).
func TestPriorityShedUnderPressure(t *testing.T) {
	gate := make(chan struct{})
	var once sync.Once
	openGate := func() { once.Do(func() { close(gate) }) }
	defer openGate()

	c := obs.NewCollector(obs.Options{SampleEvery: 1})
	e := New(Config{
		Shards: 1, QueueDepth: 8, FlushBurst: 1,
		WatchdogInterval: time.Millisecond,
		CloseTimeout:     5 * time.Second,
		Observer:         c,
		Overload: OverloadConfig{
			Enabled: true,
			// Keep the shed-rate axis out of the signal so the test is
			// purely ring-driven and deactivation is prompt.
			ShedRateRef: 1e12,
		},
	})
	keep := &countingEnforcer{}
	victim := &countingEnforcer{}
	started := make(chan struct{}, 1)
	hKeep, err := e.Add("keep", keep, func(packet.Packet) {
		select {
		case started <- struct{}{}:
		default:
		}
		<-gate
	})
	if err != nil {
		t.Fatal(err)
	}
	hVictim, err := e.Add("victim", victim, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SetShedClass("victim", 3); err != nil {
		t.Fatal(err)
	}

	// Wedge the consumer and fill the ring: pressure → 1.0.
	if err := e.SubmitBatch(hKeep, burstOf(1, 0)); err != nil {
		t.Fatal(err)
	}
	<-started
	for i := 0; i < 64; i++ {
		_ = e.SubmitBatch(hKeep, burstOf(1, i))
	}
	if !waitFor(2*time.Second, func() bool { return e.Health().Overload.Active }) {
		t.Fatalf("plane never engaged: %+v", e.Health().Overload)
	}

	// Class 3's ceiling on an 8-deep ring is ⌊8·3/25⌋=0→clamped to 1
	// burst; the ring is full, so every victim submission sheds
	// proactively, before any ring slot and before the enforcer.
	shed0 := e.OverloadShed.Load()
	for i := 0; i < 20; i++ {
		if err := e.SubmitBatch(hVictim, burstOf(1, i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.OverloadShed.Load() - shed0; got != 20 {
		t.Errorf("OverloadShed grew %d, want 20", got)
	}
	if f, err := e.Faults("victim"); err != nil {
		t.Fatal(err)
	} else if f.Quarantined {
		t.Error("proactive shed quarantined the victim")
	}
	// Class 0 is never shed proactively: its submissions still reach the
	// (full) ring and are counted as ring-full overload, not priority
	// shed.
	over0, pshed := e.Overloaded.Load(), e.OverloadShed.Load()
	_ = e.SubmitBatch(hKeep, burstOf(1, 99))
	if got := e.Overloaded.Load() - over0; got != 1 {
		t.Errorf("class-0 submission: Overloaded grew %d, want 1 (ring-full shed)", got)
	}
	if got := e.OverloadShed.Load() - pshed; got != 0 {
		t.Errorf("class-0 submission: OverloadShed grew %d, want 0", got)
	}

	// Unwedge: pressure falls, the plane disengages, and the victim's
	// traffic flows to its enforcer again.
	openGate()
	if !waitFor(5*time.Second, func() bool { return !e.Health().Overload.Active }) {
		t.Fatalf("plane never disengaged: %+v", e.Health().Overload)
	}
	n0 := victim.n.Load()
	if err := e.SubmitBatch(hVictim, burstOf(4, 1)); err != nil {
		t.Fatal(err)
	}
	if !waitFor(2*time.Second, func() bool { return victim.n.Load() >= n0+4 }) {
		t.Error("victim traffic still blocked after the plane disengaged")
	}

	// The transition pair is on the flight recorder.
	var on, off bool
	for _, ev := range e.TraceDump() {
		if ev.Kind == obs.KindOverload {
			if ev.A == 1 {
				on = true
			} else {
				off = true
			}
		}
	}
	if !on || !off {
		t.Errorf("KindOverload events: engage=%v disengage=%v, want both", on, off)
	}
	h := e.Health().Overload
	if h.PriorityShed < 20 || h.Transitions < 2 {
		t.Errorf("Overload health = %+v, want ≥20 priority sheds and ≥2 transitions", h)
	}
}

// TestAddEvictsIdleWhenFull drives the Add path against a full table: with
// EvictOnFull the least-recently-active aggregate makes room (zero-Stats
// OnEvict, stale old handle); without an idle-enough victim Add degrades to
// ErrTableFull.
func TestAddEvictsIdleWhenFull(t *testing.T) {
	var mu sync.Mutex
	evicted := map[string]enforcer.Stats{}
	e := New(Config{
		Shards: 1, MaxAggregates: 3,
		OnEvict: func(id string, final enforcer.Stats) {
			mu.Lock()
			evicted[id] = final
			mu.Unlock()
		},
		Overload: OverloadConfig{
			Enabled:      true,
			EvictOnFull:  true,
			AdmissionTTL: 2 * time.Millisecond,
		},
	})
	defer e.Close()

	mk := func() enforcer.Enforcer { return tbf.MustNew(units.Mbps, 10*units.MSS) }
	h0, err := e.Add("a0", mk(), nil)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond) // a0 is now the LRU, idle past AdmissionTTL
	if _, err := e.Add("a1", mk(), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Add("a2", mk(), nil); err != nil {
		t.Fatal(err)
	}

	// Table full; a1/a2 are fresh. Only a0 is idle enough — it is evicted
	// and the Add succeeds.
	h3, err := e.Add("a3", mk(), nil)
	if err != nil {
		t.Fatalf("Add against full table with idle victim: %v", err)
	}
	if e.Len() != 3 {
		t.Errorf("Len = %d, want 3", e.Len())
	}
	if got := e.AdmissionEvictions.Load(); got != 1 {
		t.Errorf("AdmissionEvictions = %d, want 1", got)
	}
	if got := e.Evicted.Load(); got != 1 {
		t.Errorf("Evicted = %d, want 1", got)
	}
	mu.Lock()
	final, ok := evicted["a0"]
	mu.Unlock()
	if !ok {
		t.Fatal("OnEvict never saw a0")
	}
	if p, b := final.Totals(); p != 0 || b != 0 {
		t.Errorf("admission eviction reported non-zero Stats (%d pkts, %d bytes)", p, b)
	}
	// The victim's handle is stale; the new aggregate's works.
	if err := e.SubmitBatch(h0, burstOf(1, 0)); !errors.Is(err, ErrStale) {
		t.Errorf("evicted handle error = %v, want ErrStale", err)
	}
	if err := e.SubmitBatch(h3, burstOf(1, 0)); err != nil {
		t.Errorf("fresh handle error = %v", err)
	}

	// Everything now current (< AdmissionTTL idle): the next Add degrades
	// to ErrTableFull — fast, no control-lane traffic.
	for _, id := range []string{"a1", "a2", "a3"} {
		if err := e.Update(id, func(time.Duration, enforcer.Enforcer) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Add("a4", mk(), nil); !errors.Is(err, ErrTableFull) {
		t.Errorf("Add with no idle victim = %v, want ErrTableFull", err)
	}
}

// TestAddRefusesEvictionWhenDisabled: without EvictOnFull the full-table
// behaviour is unchanged from before the overload plane existed.
func TestAddRefusesEvictionWhenDisabled(t *testing.T) {
	e := New(Config{Shards: 1, MaxAggregates: 1,
		Overload: OverloadConfig{Enabled: true}})
	defer e.Close()
	if _, err := e.Add("a", tbf.MustNew(units.Mbps, 10*units.MSS), nil); err != nil {
		t.Fatal(err)
	}
	time.Sleep(15 * time.Millisecond)
	if _, err := e.Add("b", tbf.MustNew(units.Mbps, 10*units.MSS), nil); !errors.Is(err, ErrTableFull) {
		t.Errorf("Add = %v, want ErrTableFull (EvictOnFull unset)", err)
	}
	if got := e.Evicted.Load(); got != 0 {
		t.Errorf("Evicted = %d, want 0", got)
	}
}

// TestEffectiveTTLTightens checks the pressure→TTL curve: IdleTTL until 50%
// fill, then linear down to MinIdleTTL at 100%.
func TestEffectiveTTLTightens(t *testing.T) {
	e := New(Config{
		Shards: 1, MaxAggregates: 10,
		IdleTTL: 800 * time.Millisecond, SweepInterval: time.Hour,
		Overload: OverloadConfig{Enabled: true, MinIdleTTL: 100 * time.Millisecond},
	})
	defer e.Close()
	add := func(n int) {
		for i := e.Len(); i < n; i++ {
			id := string(rune('a' + i))
			if _, err := e.Add(id, tbf.MustNew(units.Mbps, 10*units.MSS), nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	add(5) // fill 0.5: untightened
	if got := e.effectiveTTL(); got != 800*time.Millisecond {
		t.Errorf("effectiveTTL at 50%% fill = %v, want 800ms", got)
	}
	add(8) // fill 0.8: 800 - 0.6·700 = 380ms
	if got := e.effectiveTTL(); got != 380*time.Millisecond {
		t.Errorf("effectiveTTL at 80%% fill = %v, want 380ms", got)
	}
	add(10) // fill 1.0: the floor
	if got := e.effectiveTTL(); got != 100*time.Millisecond {
		t.Errorf("effectiveTTL at 100%% fill = %v, want 100ms", got)
	}
}

// TestOverloadMetricsExposition: the bcpqp_overload_* families are present
// exactly when the plane is enabled, and the per-aggregate shed counter is
// exported alongside the other fault families.
func TestOverloadMetricsExposition(t *testing.T) {
	names := func(e *Engine) map[string]bool {
		out := map[string]bool{}
		for _, f := range e.Metrics().Families {
			out[f.Name] = true
		}
		return out
	}
	e := New(Config{Shards: 1})
	if got := names(e); got["bcpqp_overload_pressure"] {
		t.Error("overload families exported by a plane-less engine")
	}
	e.Close()

	e = New(Config{Shards: 1, Overload: OverloadConfig{Enabled: true}})
	defer e.Close()
	if _, err := e.Add("a", tbf.MustNew(units.Mbps, 10*units.MSS), nil); err != nil {
		t.Fatal(err)
	}
	got := names(e)
	for _, want := range []string{
		"bcpqp_overload_pressure", "bcpqp_overload_active",
		"bcpqp_overload_ring_pressure", "bcpqp_overload_table_fill",
		"bcpqp_overload_shed_rate_pps", "bcpqp_overload_shed_packets_total",
		"bcpqp_overload_admission_evictions_total", "bcpqp_overload_transitions_total",
		"bcpqp_aggregate_shed_packets_total",
	} {
		if !got[want] {
			t.Errorf("metric family %q missing", want)
		}
	}
}
