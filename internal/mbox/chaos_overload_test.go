package mbox

// Overload chaos: the four adversarial workload families from
// internal/workload driven against the engine with the overload plane
// enabled, under -race (the chaos job adds -count=3). Each scenario asserts
// the same four invariants the ROADMAP demands:
//
//   1. Theorem-1 admission bounds hold: every aggregate's accepted bytes
//      stay ≤ r·Δt + B (+1 MSS slack), no matter how hostile the offered
//      load — floods that ignore drops, slow-start ramps, mixed-RTT swarms.
//   2. No shard leaves Healthy permanently: shards may degrade while
//      shedding, but once the storm stops every shard reclassifies Healthy.
//   3. Memory stays bounded: the registry never exceeds its cap, the slot
//      high-water mark is capped, and (for the flash-crowd churn) the heap
//      is stable across repeated waves.
//   4. Close stays deadline-bounded.
//
// Every scenario is open-loop — the generators' offered load is exact
// ground truth — so packet conservation is asserted exactly:
// offered == enforcer-seen + ring-full shed + priority shed.
//
// When BCPQP_CHAOS_OUT is set, each scenario appends one JSON line of its
// shed/eviction counters; the CI overload-chaos job uploads that file as an
// artifact.

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bcpqp/internal/enforcer"
	"bcpqp/internal/packet"
	"bcpqp/internal/phantom"
	"bcpqp/internal/rng"
	"bcpqp/internal/tbf"
	"bcpqp/internal/units"
	"bcpqp/internal/workload"
)

// dumpChaosCounters appends one JSON record of the engine's shed/eviction
// counters to $BCPQP_CHAOS_OUT (no-op when unset). CI uploads the file as
// the overload-chaos job's artifact.
func dumpChaosCounters(t *testing.T, e *Engine, scenario string) {
	t.Helper()
	path := os.Getenv("BCPQP_CHAOS_OUT")
	if path == "" {
		return
	}
	h := e.Health()
	rec := map[string]any{
		"scenario":            scenario,
		"overloaded":          h.Overloaded,
		"priority_shed":       h.Overload.PriorityShed,
		"evicted":             e.Evicted.Load(),
		"admission_evictions": h.Overload.AdmissionEvictions,
		"transitions":         h.Overload.Transitions,
		"pressure":            h.Overload.Pressure,
		"panics":              h.Panics,
	}
	b, err := json.Marshal(rec)
	if err != nil {
		t.Logf("chaos counters: %v", err)
		return
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Logf("chaos counters: %v", err)
		return
	}
	defer f.Close()
	if _, err := f.Write(append(b, '\n')); err != nil {
		t.Logf("chaos counters: %v", err)
	}
}

// drainAndSettle waits for every shard ring to empty and every shard to
// reclassify Healthy — invariant 2. Call after the producers stop and
// before Close (the watchdog dies with Close).
func drainAndSettle(t *testing.T, e *Engine) {
	t.Helper()
	if !waitFor(10*time.Second, func() bool {
		for _, sh := range e.Health().Shards {
			if sh.QueueDepth != 0 || sh.Busy {
				return false
			}
		}
		return true
	}) {
		t.Fatalf("shard rings never drained: %+v", e.Health().Shards)
	}
	if !waitFor(10*time.Second, func() bool {
		for _, sh := range e.Health().Shards {
			if sh.State != ShardHealthy {
				return false
			}
		}
		return true
	}) {
		t.Errorf("shards did not return to Healthy after the storm: %+v", e.Health().Shards)
	}
}

// closeBounded closes the engine and asserts the deadline held —
// invariant 4. Returns the report for scenario-specific checks.
func closeBounded(t *testing.T, e *Engine, timeout time.Duration) CloseReport {
	t.Helper()
	start := time.Now()
	rep := e.Close()
	if elapsed := time.Since(start); elapsed > timeout+5*time.Second {
		t.Errorf("Close took %v, deadline %v", elapsed, timeout)
	}
	return rep
}

// conserve asserts exact open-loop packet conservation for a set of
// aggregates that saw no panics and no degradation: every offered packet
// was either seen by an enforcer (accepted or dropped) or counted shed.
func conserve(t *testing.T, e *Engine, ids []string, offered int64) {
	t.Helper()
	var seen int64
	for _, id := range ids {
		st, err := e.Stats(id)
		if err != nil {
			t.Fatalf("Stats(%s): %v", id, err)
		}
		p, _ := st.Totals()
		seen += p
	}
	shed := e.Overloaded.Load() + e.OverloadShed.Load()
	if seen+shed != offered {
		t.Errorf("conservation broken: enforcers saw %d + shed %d = %d, offered %d",
			seen, shed, seen+shed, offered)
	}
}

// TestChaosFloodOverload drives non-congestion-controlled UDP floods — one
// constant-rate, one hard on/off bursty — at ~25× the enforced rate into
// tbf aggregates across all four shed classes. Floods never back off, so
// admission is pure Theorem 1: accepted ≤ r·Δt + B regardless of the
// offered 25×.
func TestChaosFloodOverload(t *testing.T) {
	clock := &fakeClock{step: 50 * time.Microsecond}
	const (
		aggs         = 4
		rate         = 8 * units.Mbps
		bucket       = int64(100 * units.MSS)
		closeTimeout = 10 * time.Second
	)
	// A deliberately shallow ring (8 bursts/shard): the flood MUST
	// overwhelm ingress so the shed paths, not just the enforcers, carry
	// the overload.
	e := New(Config{
		Shards: 2, QueueDepth: 8, Clock: clock.now,
		CloseTimeout:     closeTimeout,
		WatchdogInterval: time.Millisecond,
		Overload:         OverloadConfig{Enabled: true},
	})
	closed := false
	defer func() {
		if !closed {
			e.Close()
		}
	}()
	ids := make([]string, aggs)
	handles := make([]Handle, aggs)
	for i := 0; i < aggs; i++ {
		ids[i] = fmt.Sprintf("flood-%d", i)
		h, err := e.Add(ids[i], tbf.MustNew(rate, bucket), nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.SetShedClass(ids[i], i%4); err != nil {
			t.Fatal(err)
		}
		handles[i] = h
	}

	floods := []*workload.Flood{
		workload.NewFlood(workload.FloodConfig{
			Rate: 200 * units.Mbps, Duration: 400 * time.Millisecond,
			Flows: 8, SrcIP: 1,
		}),
		workload.NewFlood(workload.FloodConfig{
			Rate: 200 * units.Mbps, Duration: 400 * time.Millisecond,
			Period: 50 * time.Millisecond, Duty: 0.2, Flows: 8, SrcIP: 2,
		}),
	}
	var wg sync.WaitGroup
	for fi, f := range floods {
		wg.Add(1)
		go func(fi int, src workload.Source) {
			defer wg.Done()
			var buf [64]packet.Packet
			for i := 0; ; i++ {
				_, n, ok := src.Next(buf[:])
				if !ok {
					return
				}
				h := handles[(fi*2+i)%aggs] // spread across classes
				if err := e.SubmitBatch(h, buf[:n]); err != nil {
					t.Error(err)
					return
				}
			}
		}(fi, f)
	}
	wg.Wait()
	drainAndSettle(t, e)

	var offered int64
	for _, f := range floods {
		p, _ := f.Offered()
		offered += p
	}
	conserve(t, e, ids, offered)

	// Theorem 1 per aggregate: a drop-blind flood is still held to
	// r·Δt + B.
	finalT := time.Duration(clock.ticks.Load()) * clock.step
	bound := int64(rate.Bytes(finalT)) + bucket + int64(units.MSS)
	for _, id := range ids {
		st, err := e.Stats(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.AcceptedBytes > bound {
			t.Errorf("%s: accepted %d bytes > Theorem 1 bound %d under flood", id, st.AcceptedBytes, bound)
		}
		if st.AcceptedBytes == 0 {
			t.Errorf("%s: accepted nothing — flood starved the aggregate outright", id)
		}
	}
	// Memory: the registry is untouched by a data-plane flood.
	if e.Len() != aggs {
		t.Errorf("registry size %d changed under flood, want %d", e.Len(), aggs)
	}
	dumpChaosCounters(t, e, "flood")
	rep := closeBounded(t, e, closeTimeout)
	closed = true
	if rep.AbandonedShards != 0 {
		t.Errorf("flood wedged %d shards permanently", rep.AbandonedShards)
	}
}

// TestChaosFlashCrowdLifecycle is the satellite lifecycle test: three waves
// of 10k aggregate arrivals (each inside a 1 s generator window) against a
// 256-slot table with Add-path eviction on. Asserted exactly: every
// successful Add beyond capacity evicted exactly one victim (engine
// counters == OnEvict callback count, all with zero Stats), evicted handles
// fail ErrStale with no verdict bleed into recycled slots, the registry and
// slot high-water mark never exceed the cap, and the heap is stable across
// waves.
func TestChaosFlashCrowdLifecycle(t *testing.T) {
	const (
		maxAggs      = 256
		perWave      = 10_000
		waves        = 3
		closeTimeout = 10 * time.Second
	)
	var evictCalls, evictNonZero atomic.Int64
	e := New(Config{
		Shards: 4, MaxAggregates: maxAggs,
		CloseTimeout: closeTimeout,
		OnEvict: func(id string, final enforcer.Stats) {
			evictCalls.Add(1)
			if p, b := final.Totals(); p != 0 || b != 0 {
				evictNonZero.Add(1)
			}
		},
		Overload: OverloadConfig{
			Enabled:      true,
			EvictOnFull:  true,
			AdmissionTTL: time.Microsecond,
		},
	})
	closed := false
	defer func() {
		if !closed {
			e.Close()
		}
	}()

	var successes, tableFull int64
	heap := make([]uint64, waves)
	var buf [8]packet.Packet
	for wave := 0; wave < waves; wave++ {
		crowd := workload.NewFlashCrowd(rng.New(uint64(1000+wave)), workload.FlashCrowdConfig{
			Aggregates: perWave,
			Window:     time.Second,
			Prefix:     fmt.Sprintf("w%d", wave),
		})
		type added struct {
			id string
			h  Handle
		}
		var recent []added
		for {
			a, ok := crowd.NextArrival()
			if !ok {
				break
			}
			h, err := e.Add(a.ID, tbf.MustNew(8*units.Mbps, 10*units.MSS), nil)
			switch {
			case err == nil:
				successes++
				recent = append(recent, added{a.ID, h})
				n := crowd.HelloBurst(a.Index, buf[:])
				if err := e.SubmitBatch(h, buf[:n]); err != nil {
					t.Fatalf("hello burst for %s: %v", a.ID, err)
				}
			case errors.Is(err, ErrTableFull):
				tableFull++
			default:
				t.Fatalf("Add(%s): %v", a.ID, err)
			}
			// The registry never exceeds its cap mid-churn.
			if l := e.Len(); l > maxAggs {
				t.Fatalf("registry grew to %d > MaxAggregates %d", l, maxAggs)
			}
		}
		// Stale-handle discipline: handles from early in the wave whose
		// aggregates have since been evicted must fail ErrStale — never
		// reach the slot's next occupant.
		staleChecked := 0
		for i := 0; i < len(recent) && staleChecked < 200; i += 97 {
			if _, err := e.Lookup(recent[i].id); err == nil {
				continue // still registered
			}
			staleChecked++
			if err := e.SubmitBatch(recent[i].h, buf[:1]); !errors.Is(err, ErrStale) {
				t.Fatalf("evicted handle for %s returned %v, want ErrStale", recent[i].id, err)
			}
		}
		if wave > 0 && staleChecked == 0 {
			t.Error("no evicted handle found to verify staleness against")
		}
		// Heap after each identical wave, with transient garbage collected.
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		heap[wave] = ms.HeapAlloc
	}

	if got := successes + tableFull; got != int64(perWave*waves) {
		t.Errorf("adds accounted %d, want %d", got, perWave*waves)
	}
	// Every success beyond the table's capacity required exactly one
	// admission eviction.
	wantEvict := successes - maxAggs
	if got := e.AdmissionEvictions.Load(); got != wantEvict {
		t.Errorf("AdmissionEvictions = %d, want %d (successes %d − cap %d)",
			got, wantEvict, successes, maxAggs)
	}
	if got := e.Evicted.Load(); got != wantEvict {
		t.Errorf("Evicted = %d, want %d", got, wantEvict)
	}
	if got := evictCalls.Load(); got != wantEvict {
		t.Errorf("OnEvict fired %d times, want %d", got, wantEvict)
	}
	if got := evictNonZero.Load(); got != 0 {
		t.Errorf("%d admission evictions reported non-zero final Stats, want 0", got)
	}
	if e.Len() != maxAggs {
		t.Errorf("final registry size %d, want %d", e.Len(), maxAggs)
	}
	// The slot table's high-water mark is capped by MaxAggregates: churn
	// recycles slots, it does not grow the table.
	e.mu.Lock()
	hw := len(e.slotGen)
	e.mu.Unlock()
	if hw > maxAggs {
		t.Errorf("slot high-water mark %d > MaxAggregates %d", hw, maxAggs)
	}
	// Heap stability: wave 3 retains no more than wave 1 plus slack (the
	// waves are identical workloads; growth would be a lifecycle leak).
	slack := heap[0]/4 + 8<<20
	if heap[waves-1] > heap[0]+slack {
		t.Errorf("heap grew across identical waves: %d → %d bytes", heap[0], heap[waves-1])
	}
	drainAndSettle(t, e)
	dumpChaosCounters(t, e, "flash-crowd")
	rep := closeBounded(t, e, closeTimeout)
	closed = true
	if !rep.Clean {
		t.Errorf("flash crowd left a dirty close: %+v", rep)
	}
}

// TestChaosMixedRTTSwarmOverload drives two mixed-RTT swarms (RTTs spread
// across the full 2–50 ms range, windows 2–32 packets) into 8 aggregates
// spanning all shed classes. Short-RTT flows hammer with frequent small
// bursts while long-RTT flows clump — admission must stay within Theorem 1
// for every aggregate.
func TestChaosMixedRTTSwarmOverload(t *testing.T) {
	clock := &fakeClock{step: 50 * time.Microsecond}
	const (
		aggs         = 8
		rate         = 8 * units.Mbps
		bucket       = int64(64 * units.MSS)
		closeTimeout = 10 * time.Second
	)
	e := New(Config{
		Shards: 4, QueueDepth: 512, Clock: clock.now,
		CloseTimeout: closeTimeout,
		Overload:     OverloadConfig{Enabled: true},
	})
	closed := false
	defer func() {
		if !closed {
			e.Close()
		}
	}()
	ids := make([]string, aggs)
	handles := make([]Handle, aggs)
	for i := 0; i < aggs; i++ {
		ids[i] = fmt.Sprintf("swarm-%d", i)
		h, err := e.Add(ids[i], tbf.MustNew(rate, bucket), nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.SetShedClass(ids[i], i%4); err != nil {
			t.Fatal(err)
		}
		handles[i] = h
	}

	swarms := []*workload.Swarm{
		workload.NewSwarm(rng.New(21), workload.SwarmConfig{
			Flows: 64, Duration: 400 * time.Millisecond, SrcIP: 1,
		}),
		workload.NewSwarm(rng.New(22), workload.SwarmConfig{
			Flows: 64, Duration: 400 * time.Millisecond, SrcIP: 2,
		}),
	}
	var wg sync.WaitGroup
	for si, s := range swarms {
		wg.Add(1)
		go func(si int, src workload.Source) {
			defer wg.Done()
			var buf [64]packet.Packet
			for {
				_, n, ok := src.Next(buf[:])
				if !ok {
					return
				}
				// Route by flow so each flow's bursts stay on one
				// aggregate, like a real classifier would.
				h := handles[(si*4+int(buf[0].Key.SrcPort))%aggs]
				if err := e.SubmitBatch(h, buf[:n]); err != nil {
					t.Error(err)
					return
				}
			}
		}(si, s)
	}
	wg.Wait()
	drainAndSettle(t, e)

	var offered int64
	for _, s := range swarms {
		p, _ := s.Offered()
		offered += p
	}
	conserve(t, e, ids, offered)

	finalT := time.Duration(clock.ticks.Load()) * clock.step
	bound := int64(rate.Bytes(finalT)) + bucket + int64(units.MSS)
	for _, id := range ids {
		st, err := e.Stats(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.AcceptedBytes > bound {
			t.Errorf("%s: accepted %d bytes > Theorem 1 bound %d under swarm", id, st.AcceptedBytes, bound)
		}
	}
	if e.Len() != aggs {
		t.Errorf("registry size %d changed under swarm, want %d", e.Len(), aggs)
	}
	dumpChaosCounters(t, e, "mixed-rtt-swarm")
	closeBounded(t, e, closeTimeout)
	closed = true
}

// TestChaosShortFlowStormOverload drives a short-flow storm — every flow
// slow-start dominated, its per-round burst doubling from IW=4 until the
// flow exhausts and a new one takes the slot — into BC-PQP enforcers, the
// θ⁺/θ⁻ burst-control window's worst case. Admission must absorb each
// ramp's head yet stay within r·Δt + C overall, and every aggregate must
// still make progress (no flow flattened to zero).
func TestChaosShortFlowStormOverload(t *testing.T) {
	clock := &fakeClock{step: 50 * time.Microsecond}
	const (
		aggs         = 4
		rate         = 8 * units.Mbps
		queueSize    = int64(500 * units.MSS)
		closeTimeout = 10 * time.Second
	)
	e := New(Config{
		Shards: 2, QueueDepth: 512, Clock: clock.now,
		CloseTimeout: closeTimeout,
		Overload:     OverloadConfig{Enabled: true},
	})
	closed := false
	defer func() {
		if !closed {
			e.Close()
		}
	}()
	ids := make([]string, aggs)
	handles := make([]Handle, aggs)
	for i := 0; i < aggs; i++ {
		ids[i] = fmt.Sprintf("storm-%d", i)
		enf := phantom.MustNew(phantom.Config{
			Rate:         rate,
			Queues:       16,
			QueueSize:    queueSize,
			BurstControl: true,
		})
		h, err := e.Add(ids[i], enf, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.SetShedClass(ids[i], i%4); err != nil {
			t.Fatal(err)
		}
		handles[i] = h
	}

	storm := workload.NewStorm(rng.New(31), workload.StormConfig{
		Concurrency: 32,
		Duration:    400 * time.Millisecond,
		SrcIP:       1,
	})
	var buf [64]packet.Packet
	for {
		_, n, ok := storm.Next(buf[:])
		if !ok {
			break
		}
		h := handles[int(buf[0].Key.SrcPort)%aggs]
		if err := e.SubmitBatch(h, buf[:n]); err != nil {
			t.Fatal(err)
		}
	}
	drainAndSettle(t, e)

	offered, _ := storm.Offered()
	conserve(t, e, ids, offered)

	finalT := time.Duration(clock.ticks.Load()) * clock.step
	bound := int64(rate.Bytes(finalT)) + queueSize + int64(units.MSS)
	for _, id := range ids {
		st, err := e.Stats(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.AcceptedBytes > bound {
			t.Errorf("%s: accepted %d bytes > Theorem 1 bound %d under short-flow storm",
				id, st.AcceptedBytes, bound)
		}
		if st.AcceptedPackets == 0 {
			t.Errorf("%s: burst control flattened every slow-start ramp to zero", id)
		}
	}
	if e.Len() != aggs {
		t.Errorf("registry size %d changed under storm, want %d", e.Len(), aggs)
	}
	dumpChaosCounters(t, e, "short-flow-storm")
	closeBounded(t, e, closeTimeout)
	closed = true
}
