package mbox

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bcpqp/internal/enforcer"
	"bcpqp/internal/packet"
	"bcpqp/internal/phantom"
	"bcpqp/internal/tbf"
	"bcpqp/internal/units"
)

// fakeClock is a deterministic, concurrency-safe virtual clock that
// advances a fixed step per reading. The engine reads it once per burst.
type fakeClock struct {
	step  time.Duration
	ticks atomic.Int64
}

func (c *fakeClock) now() time.Duration {
	return time.Duration(c.ticks.Add(1)) * c.step
}

func pkt(flow int) packet.Packet {
	return packet.Packet{
		Key:   packet.FlowKey{SrcPort: uint16(flow + 1), Proto: 6},
		Size:  units.MSS,
		Class: flow % 16,
	}
}

func TestAddRemove(t *testing.T) {
	e := New(Config{Shards: 2})
	defer e.Close()
	h, err := e.Add("a", tbf.MustNew(units.Mbps, 10*units.MSS), nil)
	if err != nil {
		t.Fatal(err)
	}
	if h == NoHandle {
		t.Fatal("Add returned NoHandle without error")
	}
	if _, err := e.Add("a", tbf.MustNew(units.Mbps, 10*units.MSS), nil); err == nil {
		t.Error("duplicate id accepted")
	}
	if _, err := e.Add("b", nil, nil); err == nil {
		t.Error("nil enforcer accepted")
	}
	if e.Len() != 1 {
		t.Errorf("Len = %d", e.Len())
	}
	if got, err := e.Lookup("a"); err != nil || got != h {
		t.Errorf("Lookup(a) = %v, %v; want %v", got, err, h)
	}
	if _, err := e.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Remove("a"); err == nil {
		t.Error("double remove accepted")
	}
	if err := e.Submit(h, pkt(0)); !errors.Is(err, ErrStale) {
		t.Errorf("submit to removed aggregate: err = %v, want ErrStale", err)
	}
	if err := e.SubmitBatch(h, []packet.Packet{pkt(0)}); !errors.Is(err, ErrStale) {
		t.Errorf("batch submit to removed aggregate: err = %v, want ErrStale", err)
	}
	if _, err := e.Lookup("a"); err == nil {
		t.Error("lookup of removed aggregate succeeded")
	}
	if err := e.Submit(NoHandle, pkt(0)); err == nil {
		t.Error("invalid handle accepted")
	}
	if err := e.Submit(Handle(99), pkt(0)); err == nil {
		t.Error("out-of-range handle accepted")
	}
}

// TestHandlesNotReused guards the ABA property: a stale handle must never
// alias a different aggregate added later, even though the table SLOT is
// recycled — the generation tag is what keeps the handles distinct.
func TestHandlesNotReused(t *testing.T) {
	e := New(Config{Shards: 1})
	defer e.Close()
	h1, err := e.Add("first", tbf.MustNew(units.Mbps, 10*units.MSS), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Remove("first"); err != nil {
		t.Fatal(err)
	}
	h2, err := e.Add("second", tbf.MustNew(units.Mbps, 10*units.MSS), nil)
	if err != nil {
		t.Fatal(err)
	}
	if h1 == h2 {
		t.Fatalf("handle %d reused for a different aggregate", h1)
	}
	if h1.slot() != h2.slot() {
		t.Errorf("slot %d not recycled (got %d): registry would grow without bound", h1.slot(), h2.slot())
	}
	if h1.gen() == h2.gen() {
		t.Errorf("generation %d reused across recycle", h1.gen())
	}
	if err := e.Submit(h1, pkt(0)); !errors.Is(err, ErrStale) {
		t.Errorf("stale handle: err = %v, want ErrStale", err)
	}
}

func TestPerAggregateRateEnforcement(t *testing.T) {
	clock := &fakeClock{step: 100 * time.Microsecond}
	e := New(Config{Shards: 4, Clock: clock.now, QueueDepth: 1 << 16})
	defer e.Close()

	// 8 aggregates, each with a BC-PQP at 8 Mbps. The virtual clock
	// advances 100 µs per burst across ALL aggregates, so the run spans
	// a deterministic amount of virtual time.
	const aggs = 8
	var emitted [aggs]atomic.Int64
	handles := make([]Handle, aggs)
	for i := 0; i < aggs; i++ {
		i := i
		enf := phantom.MustNew(phantom.Config{
			Rate:         8 * units.Mbps,
			Queues:       16,
			QueueSize:    500 * units.MSS,
			BurstControl: true,
		})
		h, err := e.Add(fmt.Sprintf("agg-%d", i), enf, func(p packet.Packet) {
			emitted[i].Add(int64(p.Size))
		})
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = h
	}

	// Offer far above the rate from several goroutines, mixing the
	// single-packet and burst ingress paths.
	var wg sync.WaitGroup
	const perSender = 20000
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			if s%2 == 0 {
				for i := 0; i < perSender; i++ {
					h := handles[(s*perSender+i)%aggs]
					if err := e.Submit(h, pkt(i)); err != nil {
						t.Error(err)
						return
					}
				}
				return
			}
			var burst [32]packet.Packet
			for i := 0; i < perSender; i += len(burst) {
				for j := range burst {
					burst[j] = pkt(i + j)
				}
				h := handles[(s*perSender+i)%aggs]
				if err := e.SubmitBatch(h, burst[:]); err != nil {
					t.Error(err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	e.Close() // drains the shards

	if e.Overloaded.Load() > 0 {
		t.Logf("overloaded: %d (queue depth generous; informational)", e.Overloaded.Load())
	}
	// Every aggregate must have emitted something, and nothing close to
	// the full offered volume (10000 packets each at far above rate).
	for i := 0; i < aggs; i++ {
		got := emitted[i].Load()
		if got == 0 {
			t.Errorf("aggregate %d emitted nothing", i)
		}
		if got >= perSender*4/aggs*units.MSS {
			t.Errorf("aggregate %d emitted everything (%d bytes); no enforcement", i, got)
		}
	}
}

func TestStatsOnShardGoroutine(t *testing.T) {
	e := New(Config{Shards: 2})
	defer e.Close()
	h, err := e.Add("x", tbf.MustNew(8*units.Mbps, 2*units.MSS), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := e.Submit(h, pkt(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Stats is synchronous: it flushes the pending burst and runs after
	// everything queued before it.
	st, err := e.Stats("x")
	if err != nil {
		t.Fatal(err)
	}
	if p, _ := st.Totals(); p != 10 {
		t.Errorf("stats saw %d packets, want 10", p)
	}
	if _, err := e.Stats("nope"); err == nil {
		t.Error("stats for unknown aggregate accepted")
	}
}

// statlessEnforcer implements Enforcer but not StatsReader.
type statlessEnforcer struct{}

func (statlessEnforcer) Submit(time.Duration, packet.Packet) enforcer.Verdict {
	return enforcer.Transmit
}

func TestStatsErrNoStats(t *testing.T) {
	e := New(Config{Shards: 1})
	defer e.Close()
	if _, err := e.Add("mute", statlessEnforcer{}, nil); err != nil {
		t.Fatal(err)
	}
	_, err := e.Stats("mute")
	if !errors.Is(err, ErrNoStats) {
		t.Errorf("Stats on stats-less enforcer: err = %v, want ErrNoStats", err)
	}
}

func TestSingleAndBatchAgree(t *testing.T) {
	// The same deterministic traffic through Submit and through
	// SubmitBatch must produce identical enforcement statistics.
	run := func(batch bool) enforcer.Stats {
		clock := &fakeClock{step: 100 * time.Microsecond}
		e := New(Config{Shards: 1, Clock: clock.now, QueueDepth: 1 << 16})
		defer e.Close()
		h, err := e.Add("x", tbf.MustNew(8*units.Mbps, 64*units.MSS), nil)
		if err != nil {
			t.Fatal(err)
		}
		const n = 4096
		if batch {
			var buf [32]packet.Packet
			for i := 0; i < n; i += len(buf) {
				for j := range buf {
					buf[j] = pkt(i + j)
				}
				if err := e.SubmitBatch(h, buf[:]); err != nil {
					t.Fatal(err)
				}
			}
		} else {
			for i := 0; i < n; i++ {
				if err := e.Submit(h, pkt(i)); err != nil {
					t.Fatal(err)
				}
			}
		}
		st, err := e.Stats("x")
		if err != nil {
			t.Fatal(err)
		}
		if p, _ := st.Totals(); p != n {
			t.Fatalf("engine saw %d packets, want %d", p, n)
		}
		return st
	}
	single, batched := run(false), run(true)
	if single != batched {
		t.Errorf("single-packet path stats %+v != batch path stats %+v", single, batched)
	}
}

func TestFlushRunsMaintenance(t *testing.T) {
	e := New(Config{Shards: 1})
	defer e.Close()
	enf := phantom.MustNew(phantom.Config{
		Rate: units.Mbps, Queues: 2, QueueSize: 100 * units.MSS,
		BurstControl: true,
	})
	if _, err := e.Add("x", enf, nil); err != nil {
		t.Fatal(err)
	}
	ran := false
	if err := e.Flush("x", func(got enforcer.Enforcer) {
		ran = got == enforcer.Enforcer(enf)
	}); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Error("flush did not run with the registered enforcer")
	}
}

func TestDeadlineFlushDeliversPartialBursts(t *testing.T) {
	// A lone packet must not be stranded in the pending burst: the
	// background deadline flusher delivers it without any further
	// traffic or control activity.
	var emitted atomic.Int64
	e := New(Config{Shards: 1, FlushInterval: time.Millisecond, QueueDepth: 16})
	defer e.Close()
	h, err := e.Add("x", tbf.MustNew(units.Mbps, 10*units.MSS), func(packet.Packet) {
		emitted.Add(1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Submit(h, pkt(0)); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for emitted.Load() == 0 {
		select {
		case <-deadline:
			t.Fatal("staged packet never flushed by the deadline trigger")
		default:
			time.Sleep(time.Millisecond)
		}
	}
}

func TestOverloadSheds(t *testing.T) {
	// A blocked shard must shed bursts rather than block Submit.
	gate := make(chan struct{})
	e := New(Config{Shards: 1, QueueDepth: 4})
	// LIFO: the gate must open before Close waits for the shard.
	defer e.Close()
	defer close(gate)
	enf := tbf.MustNew(units.Mbps, 10*units.MSS)
	h, err := e.Add("x", enf, func(packet.Packet) { <-gate })
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for e.Overloaded.Load() == 0 {
		select {
		case <-deadline:
			t.Fatal("never shed load with a blocked shard")
		default:
		}
		if err := e.Submit(h, pkt(0)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestControlFailsOverOnSaturatedShard(t *testing.T) {
	// With the shard goroutine wedged in an emit callback and the data
	// ring full, a control operation must not block forever behind data
	// traffic: it fails over to the control lane and, with the consumer
	// still wedged, eventually reports ErrSaturated instead of hanging.
	gate := make(chan struct{})
	e := New(Config{
		Shards: 1, QueueDepth: 1, FlushBurst: 1,
		ControlTimeout: 20 * time.Millisecond,
	})
	defer e.Close()
	defer close(gate)
	h, err := e.Add("x", tbf.MustNew(units.Mbps, 1000*units.MSS), func(packet.Packet) { <-gate })
	if err != nil {
		t.Fatal(err)
	}
	// Wedge the consumer and fill the ring.
	for i := 0; i < 64; i++ {
		if err := e.Submit(h, pkt(0)); err != nil {
			t.Fatal(err)
		}
	}
	// Control ops fail over from the full data ring to the control lane
	// and park there until the consumer unwedges; once the lane itself
	// is full, further ops must report ErrSaturated instead of hanging.
	// Launch enough to overflow the lane and wait for the first
	// saturation report.
	errs := make(chan error, 24)
	for i := 0; i < cap(errs); i++ {
		go func() { errs <- e.Flush("x", func(enforcer.Enforcer) {}) }()
	}
	timeout := time.After(30 * time.Second)
	for {
		select {
		case err := <-errs:
			if errors.Is(err, ErrSaturated) {
				return // reported saturation instead of hanging
			}
			if err != nil {
				t.Fatalf("unexpected control error: %v", err)
			}
		case <-timeout:
			t.Fatal("control never reported saturation on a wedged shard")
		}
	}
}

func TestCloseIdempotentAndRejects(t *testing.T) {
	e := New(Config{Shards: 2})
	h, err := e.Add("x", tbf.MustNew(units.Mbps, 10*units.MSS), nil)
	if err != nil {
		t.Fatal(err)
	}
	e.Close()
	e.Close()
	if err := e.Submit(h, pkt(0)); err == nil {
		t.Error("submit after close accepted")
	}
	if err := e.SubmitBatch(h, []packet.Packet{pkt(0)}); err == nil {
		t.Error("batch submit after close accepted")
	}
	if err := e.SubmitID("x", pkt(0)); err == nil {
		t.Error("submit by id after close accepted")
	}
	if _, err := e.Stats("x"); err == nil {
		t.Error("stats after close accepted")
	}
	if _, err := e.Add("y", tbf.MustNew(units.Mbps, 10*units.MSS), nil); err == nil {
		t.Error("add after close accepted")
	}
}

func TestSubmitIDCompatibilityShim(t *testing.T) {
	e := New(Config{Shards: 1})
	defer e.Close()
	if _, err := e.Add("x", tbf.MustNew(8*units.Mbps, 4*units.MSS), nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := e.SubmitID("x", pkt(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.SubmitID("nope", pkt(0)); err == nil {
		t.Error("submit to unknown id accepted")
	}
	st, err := e.Stats("x")
	if err != nil {
		t.Fatal(err)
	}
	if p, _ := st.Totals(); p != 5 {
		t.Errorf("stats saw %d packets, want 5", p)
	}
}

func TestConcurrentAddRemoveDuringTraffic(t *testing.T) {
	clock := &fakeClock{step: 10 * time.Microsecond}
	e := New(Config{Shards: 4, Clock: clock.now, QueueDepth: 1 << 12})
	defer e.Close()
	steady, err := e.Add("steady", tbf.MustNew(8*units.Mbps, 100*units.MSS), nil)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			e.Submit(steady, pkt(i))
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			id := fmt.Sprintf("churn-%d", i)
			h, err := e.Add(id, tbf.MustNew(units.Mbps, 10*units.MSS), nil)
			if err != nil {
				t.Error(err)
				return
			}
			e.Submit(h, pkt(i))
			if _, err := e.Remove(id); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
	if e.Len() != 1 {
		t.Errorf("Len = %d after churn, want 1", e.Len())
	}
}

func TestFlushDrivesPhantomMaintenance(t *testing.T) {
	// Integration: burst-control magic reclaim driven through the
	// engine's race-free Flush hook, the way a production deployment
	// would run periodic Tick maintenance.
	clock := &fakeClock{step: 50 * time.Microsecond}
	e := New(Config{Shards: 1, Clock: clock.now, QueueDepth: 1 << 12})
	defer e.Close()
	enf := phantom.MustNew(phantom.Config{
		Rate:         8 * units.Mbps,
		Queues:       1,
		QueueSize:    400 * units.MSS,
		BurstControl: true,
		Window:       10 * time.Millisecond,
	})
	h, err := e.Add("x", enf, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Burst to trigger the magic fill.
	for i := 0; i < 400; i++ {
		if err := e.Submit(h, pkt(0)); err != nil {
			t.Fatal(err)
		}
	}
	var magic int64
	if err := e.Flush("x", func(got enforcer.Enforcer) {
		magic = got.(*phantom.PQP).MagicBytes(0)
	}); err != nil {
		t.Fatal(err)
	}
	if magic == 0 {
		t.Fatal("burst did not magic-fill through the engine")
	}
	// Let virtual time pass (each Flush advances the clock), then run
	// Tick maintenance until the reclaim fires.
	for i := 0; i < 10000 && magic > 0; i++ {
		if err := e.Flush("x", func(got enforcer.Enforcer) {
			p := got.(*phantom.PQP)
			p.Tick(clock.now())
			magic = p.MagicBytes(0)
		}); err != nil {
			t.Fatal(err)
		}
	}
	if magic != 0 {
		t.Errorf("magic never reclaimed via engine maintenance: %d bytes", magic)
	}
}
