package mbox

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bcpqp/internal/enforcer"
	"bcpqp/internal/packet"
	"bcpqp/internal/phantom"
	"bcpqp/internal/tbf"
	"bcpqp/internal/units"
)

// fakeClock is a deterministic, concurrency-safe virtual clock that
// advances a fixed step per reading.
type fakeClock struct {
	step  time.Duration
	ticks atomic.Int64
}

func (c *fakeClock) now() time.Duration {
	return time.Duration(c.ticks.Add(1)) * c.step
}

func pkt(flow int) packet.Packet {
	return packet.Packet{
		Key:   packet.FlowKey{SrcPort: uint16(flow + 1), Proto: 6},
		Size:  units.MSS,
		Class: flow % 16,
	}
}

func TestAddRemove(t *testing.T) {
	e := New(Config{Shards: 2})
	defer e.Close()
	if err := e.Add("a", tbf.MustNew(units.Mbps, 10*units.MSS), nil); err != nil {
		t.Fatal(err)
	}
	if err := e.Add("a", tbf.MustNew(units.Mbps, 10*units.MSS), nil); err == nil {
		t.Error("duplicate id accepted")
	}
	if err := e.Add("b", nil, nil); err == nil {
		t.Error("nil enforcer accepted")
	}
	if e.Len() != 1 {
		t.Errorf("Len = %d", e.Len())
	}
	if err := e.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if err := e.Remove("a"); err == nil {
		t.Error("double remove accepted")
	}
	if err := e.Submit("a", pkt(0)); err == nil {
		t.Error("submit to removed aggregate accepted")
	}
}

func TestPerAggregateRateEnforcement(t *testing.T) {
	clock := &fakeClock{step: 100 * time.Microsecond}
	e := New(Config{Shards: 4, Clock: clock.now, QueueDepth: 1 << 16})
	defer e.Close()

	// 8 aggregates, each with a BC-PQP at 8 Mbps. The virtual clock
	// advances 100 µs per enforcer invocation across ALL aggregates, so
	// the run spans a deterministic amount of virtual time.
	const aggs = 8
	var emitted [aggs]atomic.Int64
	for i := 0; i < aggs; i++ {
		i := i
		enf := phantom.MustNew(phantom.Config{
			Rate:         8 * units.Mbps,
			Queues:       16,
			QueueSize:    500 * units.MSS,
			BurstControl: true,
		})
		if err := e.Add(fmt.Sprintf("agg-%d", i), enf, func(p packet.Packet) {
			emitted[i].Add(int64(p.Size))
		}); err != nil {
			t.Fatal(err)
		}
	}

	// Offer far above the rate from several goroutines.
	var wg sync.WaitGroup
	const perSender = 20000
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				id := fmt.Sprintf("agg-%d", (s*perSender+i)%aggs)
				if err := e.Submit(id, pkt(i)); err != nil {
					t.Error(err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	e.Close() // drains the shards

	if e.Overloaded.Load() > 0 {
		t.Logf("overloaded: %d (queue depth generous; informational)", e.Overloaded.Load())
	}
	// Every aggregate must have emitted something, and nothing close to
	// the full offered volume (10000 packets each at far above rate).
	for i := 0; i < aggs; i++ {
		got := emitted[i].Load()
		if got == 0 {
			t.Errorf("aggregate %d emitted nothing", i)
		}
		if got >= perSender*4/aggs*units.MSS {
			t.Errorf("aggregate %d emitted everything (%d bytes); no enforcement", i, got)
		}
	}
}

func TestStatsOnShardGoroutine(t *testing.T) {
	e := New(Config{Shards: 2})
	defer e.Close()
	if err := e.Add("x", tbf.MustNew(8*units.Mbps, 2*units.MSS), nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := e.Submit("x", pkt(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Stats is synchronous: it runs after everything queued before it.
	st, err := e.Stats("x")
	if err != nil {
		t.Fatal(err)
	}
	if p, _ := st.Totals(); p != 10 {
		t.Errorf("stats saw %d packets, want 10", p)
	}
	if _, err := e.Stats("nope"); err == nil {
		t.Error("stats for unknown aggregate accepted")
	}
}

func TestFlushRunsMaintenance(t *testing.T) {
	e := New(Config{Shards: 1})
	defer e.Close()
	enf := phantom.MustNew(phantom.Config{
		Rate: units.Mbps, Queues: 2, QueueSize: 100 * units.MSS,
		BurstControl: true,
	})
	if err := e.Add("x", enf, nil); err != nil {
		t.Fatal(err)
	}
	ran := false
	if err := e.Flush("x", func(got enforcer.Enforcer) {
		ran = got == enforcer.Enforcer(enf)
	}); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Error("flush did not run with the registered enforcer")
	}
}

func TestOverloadSheds(t *testing.T) {
	// A blocked shard must shed packets rather than block Submit.
	gate := make(chan struct{})
	e := New(Config{Shards: 1, QueueDepth: 4})
	// LIFO: the gate must open before Close waits for the shard.
	defer e.Close()
	defer close(gate)
	enf := tbf.MustNew(units.Mbps, 10*units.MSS)
	if err := e.Add("x", enf, func(packet.Packet) { <-gate }); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for e.Overloaded.Load() == 0 {
		select {
		case <-deadline:
			t.Fatal("never shed load with a blocked shard")
		default:
		}
		if err := e.Submit("x", pkt(0)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCloseIdempotentAndRejects(t *testing.T) {
	e := New(Config{Shards: 2})
	if err := e.Add("x", tbf.MustNew(units.Mbps, 10*units.MSS), nil); err != nil {
		t.Fatal(err)
	}
	e.Close()
	e.Close()
	if err := e.Submit("x", pkt(0)); err == nil {
		t.Error("submit after close accepted")
	}
	if _, err := e.Stats("x"); err == nil {
		t.Error("stats after close accepted")
	}
	if err := e.Add("y", tbf.MustNew(units.Mbps, 10*units.MSS), nil); err == nil {
		t.Error("add after close accepted")
	}
}

func TestConcurrentAddRemoveDuringTraffic(t *testing.T) {
	clock := &fakeClock{step: 10 * time.Microsecond}
	e := New(Config{Shards: 4, Clock: clock.now, QueueDepth: 1 << 12})
	defer e.Close()
	if err := e.Add("steady", tbf.MustNew(8*units.Mbps, 100*units.MSS), nil); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			e.Submit("steady", pkt(i))
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			id := fmt.Sprintf("churn-%d", i)
			if err := e.Add(id, tbf.MustNew(units.Mbps, 10*units.MSS), nil); err != nil {
				t.Error(err)
				return
			}
			e.Submit(id, pkt(i))
			if err := e.Remove(id); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
	if e.Len() != 1 {
		t.Errorf("Len = %d after churn, want 1", e.Len())
	}
}

func TestFlushDrivesPhantomMaintenance(t *testing.T) {
	// Integration: burst-control magic reclaim driven through the
	// engine's race-free Flush hook, the way a production deployment
	// would run periodic Tick maintenance.
	clock := &fakeClock{step: 50 * time.Microsecond}
	e := New(Config{Shards: 1, Clock: clock.now, QueueDepth: 1 << 12})
	defer e.Close()
	enf := phantom.MustNew(phantom.Config{
		Rate:         8 * units.Mbps,
		Queues:       1,
		QueueSize:    400 * units.MSS,
		BurstControl: true,
		Window:       10 * time.Millisecond,
	})
	if err := e.Add("x", enf, nil); err != nil {
		t.Fatal(err)
	}
	// Burst to trigger the magic fill.
	for i := 0; i < 400; i++ {
		if err := e.Submit("x", pkt(0)); err != nil {
			t.Fatal(err)
		}
	}
	var magic int64
	if err := e.Flush("x", func(got enforcer.Enforcer) {
		magic = got.(*phantom.PQP).MagicBytes(0)
	}); err != nil {
		t.Fatal(err)
	}
	if magic == 0 {
		t.Fatal("burst did not magic-fill through the engine")
	}
	// Let virtual time pass (each Flush advances the clock), then run
	// Tick maintenance until the reclaim fires.
	for i := 0; i < 10000 && magic > 0; i++ {
		if err := e.Flush("x", func(got enforcer.Enforcer) {
			p := got.(*phantom.PQP)
			p.Tick(clock.now())
			magic = p.MagicBytes(0)
		}); err != nil {
			t.Fatal(err)
		}
	}
	if magic != 0 {
		t.Errorf("magic never reclaimed via engine maintenance: %d bytes", magic)
	}
}
