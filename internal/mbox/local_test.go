package mbox

// Ring-bypass fast-path tests: the LocalSubmitter must be byte-identical to
// the ring path on the same seeded workload, refuse cross-shard handles,
// and degrade to a counted ErrSaturated when the occupancy word is wedged.

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"bcpqp/internal/enforcer"
	"bcpqp/internal/packet"
	"bcpqp/internal/tbf"
	"bcpqp/internal/units"
)

// emitRec captures what an emit hook can observe about one relayed packet.
type emitRec struct {
	Seq  int64
	Size int
	CE   bool
}

// seededBursts regenerates the same randomized burst schedule from a seed:
// variable burst lengths, 8 flows, variable sizes.
func seededBursts(seed int64, bursts int) [][]packet.Packet {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]packet.Packet, bursts)
	var seq int64
	for b := range out {
		n := 1 + rng.Intn(32)
		pkts := make([]packet.Packet, n)
		for i := range pkts {
			pkts[i] = packet.Packet{
				Key:  packet.FlowKey{SrcIP: uint32(0x0a000000 + rng.Intn(8)), SrcPort: 7000, Proto: 17},
				Size: 64 + rng.Intn(1400),
				Seq:  seq,
			}
			seq++
		}
		out[b] = pkts
	}
	return out
}

// TestLocalSubmitEquivalentToRing runs the identical seeded workload through
// the ring path and the inline path on otherwise-identical engines and
// demands the same emitted sequence (order, sizes, CE marks), the same final
// enforcer stats, and that the inline run really bypassed the ring.
func TestLocalSubmitEquivalentToRing(t *testing.T) {
	const bursts = 300
	run := func(local bool) (recs []emitRec, st enforcer.Stats, inline int64) {
		clock := &fakeClock{step: 50 * time.Microsecond}
		e := New(Config{Shards: 2, QueueDepth: 1 << 12, Clock: clock.now})
		defer e.Close()
		h, err := e.AddPinned("agg", 1, tbf.MustNew(4*units.Mbps, 20*units.MSS),
			func(p packet.Packet) { recs = append(recs, emitRec{p.Seq, p.Size, p.CE}) })
		if err != nil {
			t.Fatal(err)
		}
		submit := e.SubmitBatch
		if local {
			ls, err := e.Local(h)
			if err != nil {
				t.Fatal(err)
			}
			if ls.Shard() != 1 {
				t.Fatalf("Local resolved shard %d, want the pinned shard 1", ls.Shard())
			}
			submit = ls.SubmitBatch
		}
		for _, b := range seededBursts(7, bursts) {
			if err := submit(h, b); err != nil {
				t.Fatal(err)
			}
		}
		// Stats is an in-band barrier on the ring path and trivially
		// ordered on the inline path — either way recs is final after it.
		st, err = e.Stats("agg")
		if err != nil {
			t.Fatal(err)
		}
		return recs, st, e.InlineBursts.Load()
	}

	ringRecs, ringStats, ringInline := run(false)
	localRecs, localStats, localInline := run(true)

	if ringInline != 0 {
		t.Errorf("ring run counted %d inline bursts, want 0", ringInline)
	}
	if localInline != bursts {
		t.Errorf("local run counted %d inline bursts, want %d", localInline, bursts)
	}
	if ringStats != localStats {
		t.Errorf("final stats diverge: ring %+v, local %+v", ringStats, localStats)
	}
	if len(ringRecs) == 0 {
		t.Fatal("ring path emitted nothing — workload too small to compare")
	}
	if !reflect.DeepEqual(ringRecs, localRecs) {
		i := 0
		for i < len(ringRecs) && i < len(localRecs) && ringRecs[i] == localRecs[i] {
			i++
		}
		t.Fatalf("emitted sequences diverge at index %d (ring %d recs, local %d recs)", i, len(ringRecs), len(localRecs))
	}
}

func TestLocalSubmitWrongShard(t *testing.T) {
	e := New(Config{Shards: 2, QueueDepth: 64})
	defer e.Close()
	h, err := e.AddPinned("a", 0, tbf.MustNew(units.Mbps, 10*units.MSS), nil)
	if err != nil {
		t.Fatal(err)
	}
	ls, err := e.LocalShard(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ls.SubmitBatch(h, burstOf(4, 0)); !errors.Is(err, ErrWrongShard) {
		t.Fatalf("cross-shard submit = %v, want ErrWrongShard", err)
	}
	if _, err := e.LocalShard(2); err == nil {
		t.Fatal("LocalShard(2) on a 2-shard engine succeeded")
	}
	if _, err := e.AddPinned("b", 9, tbf.MustNew(units.Mbps, 10*units.MSS), nil); err == nil {
		t.Fatal("AddPinned to an out-of-range shard succeeded")
	}
}

func TestLocalSubmitStaleHandle(t *testing.T) {
	e := New(Config{Shards: 1, QueueDepth: 64})
	defer e.Close()
	h, err := e.Add("a", tbf.MustNew(units.Mbps, 10*units.MSS), nil)
	if err != nil {
		t.Fatal(err)
	}
	ls, err := e.Local(h)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if err := ls.SubmitBatch(h, burstOf(4, 0)); !errors.Is(err, ErrStale) {
		t.Fatalf("stale submit = %v, want ErrStale", err)
	}
}

// TestLocalSubmitSaturatedOnWedgedShard wedges the shard goroutine inside an
// emit hook (so it holds the occupancy word) and asserts an inline submitter
// degrades: ErrSaturated within ControlTimeout, packets counted as shed.
func TestLocalSubmitSaturatedOnWedgedShard(t *testing.T) {
	gate := make(chan struct{})
	e := New(Config{Shards: 1, QueueDepth: 64, ControlTimeout: 50 * time.Millisecond})
	defer e.Close()
	defer close(gate)
	wedged := make(chan struct{})
	hw, err := e.Add("wedge", tbf.MustNew(units.Mbps, 1000*units.MSS), func(packet.Packet) {
		close(wedged)
		<-gate
	})
	if err != nil {
		t.Fatal(err)
	}
	hl, err := e.Add("inline", tbf.MustNew(units.Mbps, 1000*units.MSS), nil)
	if err != nil {
		t.Fatal(err)
	}
	ls, err := e.Local(hl)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Submit(hw, pkt(0)); err != nil {
		t.Fatal(err)
	}
	<-wedged // shard goroutine now holds the occupancy word

	burst := burstOf(8, 1)
	if err := ls.SubmitBatch(hl, burst); !errors.Is(err, ErrSaturated) {
		t.Fatalf("inline submit against a wedged shard = %v, want ErrSaturated", err)
	}
	if got := e.Overloaded.Load(); got != int64(len(burst)) {
		t.Errorf("Overloaded = %d, want %d (the whole shed burst)", got, len(burst))
	}
	if got := e.InlineFallbacks.Load(); got != 1 {
		t.Errorf("InlineFallbacks = %d, want 1", got)
	}
}
