package mbox

import (
	"fmt"
	"time"

	"bcpqp/internal/enforcer"
	"bcpqp/internal/obs"
	"bcpqp/internal/units"
)

// Conformance auditing: an armed aggregate carries live obs.Audit
// envelopes — one for the whole aggregate and optionally one per tree
// node — and every enforced run's accepted bytes are checked against the
// piecewise Theorem-1 bound (accepted ≤ r·Δt + B) on the shard goroutine,
// immediately after the verdict tally. The auditor is a watchdog on the
// enforcers themselves: it shares no admission state with them, so a
// corrupted or buggy enforcer that over-admits is caught by independent
// arithmetic, not by asking the suspect for its own opinion.
//
// The audit state hangs off the aggregate as an atomic.Pointer to an
// immutable aggAudit: arming swaps a new pointer in-band (copy-on-write,
// serialized with the aggregate's bursts), rate changes rebase the armed
// envelopes inside the same in-band closure that reconfigures the
// enforcer, and the datapath reads one pointer-load per run — nil means
// unarmed and costs a single predictable branch.
type aggAudit struct {
	// whole audits the aggregate-level envelope: every accepted byte,
	// whatever node it entered at.
	whole *obs.Audit
	// nodes holds per-node audits (index = NodeID; a flat aggregate has
	// exactly one slot for node 0). nil slots are unarmed.
	nodes []*obs.Audit
	// chains[int(node)+1] lists the audits an accepted run entering at
	// node must credit: the armed node audits on the ingress→root path,
	// then whole. Index 0 is the NoNode (whole-aggregate submission)
	// chain: root + whole — every admitted packet passes the root
	// whichever leaf it was classed to. Precomputed at arm time so the
	// hot path is a slice walk with no topology queries.
	chains [][]*obs.Audit
	// vioTick coalesces KindViolation trace events at the burst-sampling
	// cadence under a sustained breach (the first always records). Only
	// touched on the owning shard goroutine.
	vioTick int
}

// nodeAuditCount returns the size of the aggregate's node-audit space: the
// tree's node count, or one (node 0 = the enforcer itself) for a flat
// aggregate.
func nodeAuditCount(agg *aggregate) int {
	if agg.tree != nil {
		return agg.tree.NumNodes()
	}
	return 1
}

// rebuild recomputes the per-ingress audit chains from the armed set and
// the (immutable) tree topology. Runs at arm time on the shard goroutine.
func (au *aggAudit) rebuild(agg *aggregate) {
	n := nodeAuditCount(agg)
	au.chains = make([][]*obs.Audit, n+1)
	for node := 0; node < n; node++ {
		var c []*obs.Audit
		if agg.tree != nil {
			for cur := enforcer.NodeID(node); cur != enforcer.NoNode; cur = agg.tree.Parent(cur) {
				if a := au.nodes[cur]; a != nil {
					c = append(c, a)
				}
			}
		} else if a := au.nodes[node]; a != nil {
			c = append(c, a)
		}
		if au.whole != nil {
			c = append(c, au.whole)
		}
		au.chains[node+1] = c
	}
	var c0 []*obs.Audit
	if agg.tree != nil {
		for i := 0; i < n; i++ {
			if agg.tree.Parent(enforcer.NodeID(i)) == enforcer.NoNode {
				if a := au.nodes[i]; a != nil {
					c0 = append(c0, a)
				}
				break
			}
		}
	} else if a := au.nodes[0]; a != nil {
		c0 = append(c0, a)
	}
	if au.whole != nil {
		c0 = append(c0, au.whole)
	}
	au.chains[0] = c0
}

// cloneAudit copies the armed set (not the audits themselves — envelopes
// survive re-arming of their siblings) for a copy-on-write swap.
func cloneAudit(agg *aggregate) *aggAudit {
	na := &aggAudit{nodes: make([]*obs.Audit, nodeAuditCount(agg))}
	if old := agg.audit.Load(); old != nil {
		na.whole = old.whole
		copy(na.nodes, old.nodes)
	}
	return na
}

// ArmAudit arms (or re-arms) the whole-aggregate conformance auditor with
// the declared envelope: rate in bits per second and a burst allowance in
// bytes. The swap is in-band — the new envelope starts at the aggregate's
// virtual time, serialized against its bursts — and subsequent SetRate
// calls rebase it automatically. Re-arming replaces the envelope and
// resets its counters.
func (e *Engine) ArmAudit(id string, rate units.Rate, burstBytes int64) error {
	if burstBytes < 0 {
		return fmt.Errorf("mbox: aggregate %q: negative audit burst %d", id, burstBytes)
	}
	agg, err := e.aggByID(id)
	if err != nil {
		return err
	}
	return e.controlAgg(agg, func(enforcer.Enforcer) {
		na := cloneAudit(agg)
		na.whole = obs.NewAudit(e.cfg.Clock(), int64(rate), burstBytes, 0)
		na.rebuild(agg)
		agg.audit.Store(na)
	})
}

// ArmNodeAudit arms (or re-arms) a per-node conformance auditor inside a
// tree aggregate: the node's envelope is audited independently of its
// leaves, so an interior bound violation is attributed to the node even
// when every leaf is individually conformant. For a flat aggregate node 0
// audits the enforcer itself. SetNodeRate on the node rebases the
// envelope.
func (e *Engine) ArmNodeAudit(id string, node enforcer.NodeID, rate units.Rate, burstBytes int64) error {
	if burstBytes < 0 {
		return fmt.Errorf("mbox: aggregate %q: negative audit burst %d", id, burstBytes)
	}
	agg, err := e.aggByID(id)
	if err != nil {
		return err
	}
	if int(node) < 0 || int(node) >= nodeAuditCount(agg) {
		return fmt.Errorf("mbox: aggregate %q node %d: %w", id, node, ErrBadNode)
	}
	return e.controlAgg(agg, func(enforcer.Enforcer) {
		na := cloneAudit(agg)
		na.nodes[node] = obs.NewAudit(e.cfg.Clock(), int64(rate), burstBytes, 0)
		na.rebuild(agg)
		agg.audit.Store(na)
	})
}

// DisarmAudit removes every auditor from the aggregate.
func (e *Engine) DisarmAudit(id string) error {
	agg, err := e.aggByID(id)
	if err != nil {
		return err
	}
	return e.controlAgg(agg, func(enforcer.Enforcer) {
		agg.audit.Store(nil)
	})
}

// auditRun checks one enforced run against every armed envelope on its
// ingress chain. Runs on the shard goroutine right after the verdict
// tally; the cost is a pointer load, a short slice walk and integer
// arithmetic — no allocation, no locks. A breach records a KindViolation
// trace event (coalesced at the sampling cadence) attributed to the run's
// ingress node.
func (e *Engine) auditRun(s *shard, now time.Duration, agg *aggregate, au *aggAudit, node enforcer.NodeID, accBytes int64) {
	idx := int(node) + 1
	if idx < 0 || idx >= len(au.chains) {
		idx = 0
	}
	var worst int64
	var worstAudit *obs.Audit
	for _, a := range au.chains[idx] {
		if d := a.Observe(now, accBytes); d > worst {
			worst = d
			worstAudit = a
		}
	}
	if worst == 0 {
		return
	}
	au.vioTick--
	if au.vioTick > 0 {
		return
	}
	au.vioTick = e.obsSample
	if au.vioTick < 1 {
		au.vioTick = 1
	}
	c := worstAudit.Snapshot()
	e.record(s, obs.Event{
		Kind: obs.KindViolation,
		VT:   int64(now),
		Agg:  int64(agg.h),
		Node: int32(node),
		A:    worst,
		B:    c.RateBps,
		C:    c.AcceptedBytes,
	})
}

// AuditEntry is one auditor's exported state in an AuditReport: the
// whole-aggregate envelope (Node = NoNode) or one tree node's.
type AuditEntry struct {
	// Aggregate is the audited aggregate's id.
	Aggregate string
	// Node is the audited tree node, enforcer.NoNode for the
	// whole-aggregate envelope.
	Node enforcer.NodeID
	// NodeLabel is the tree's human-readable node name ("" for the
	// whole-aggregate envelope and for flat aggregates).
	NodeLabel string
	// Counters is the envelope state as of the last audited run.
	Counters obs.AuditCounters
	// Slack is the per-run envelope-slack distribution in bytes
	// (breaching runs record 0).
	Slack obs.DigestSnapshot
	// RateErr is the per-window |rate error| distribution in permille of
	// the enforced rate.
	RateErr obs.DigestSnapshot
}

// AuditReport snapshots every armed auditor in the engine, whole-aggregate
// entries first per aggregate, then armed nodes in id order. Control-plane
// only (it allocates); the datapath is never stopped.
func (e *Engine) AuditReport() []AuditEntry {
	t := e.table.Load()
	var out []AuditEntry
	for _, agg := range t.slots {
		if agg == nil {
			continue
		}
		au := agg.audit.Load()
		if au == nil {
			continue
		}
		if au.whole != nil {
			out = append(out, AuditEntry{
				Aggregate: agg.id,
				Node:      enforcer.NoNode,
				Counters:  au.whole.Snapshot(),
				Slack:     au.whole.SlackDigest(),
				RateErr:   au.whole.RateErrDigest(),
			})
		}
		for n, a := range au.nodes {
			if a == nil {
				continue
			}
			ent := AuditEntry{
				Aggregate: agg.id,
				Node:      enforcer.NodeID(n),
				Counters:  a.Snapshot(),
				Slack:     a.SlackDigest(),
				RateErr:   a.RateErrDigest(),
			}
			if agg.tree != nil {
				ent.NodeLabel = agg.tree.NodeLabel(enforcer.NodeID(n))
			}
			out = append(out, ent)
		}
	}
	return out
}

// AuditViolations sums violations across every armed auditor — the
// headline "is the system conformant" number (0 on a healthy system).
func (e *Engine) AuditViolations() int64 {
	var n int64
	t := e.table.Load()
	for _, agg := range t.slots {
		if agg == nil {
			continue
		}
		au := agg.audit.Load()
		if au == nil {
			continue
		}
		if au.whole != nil {
			n += au.whole.Snapshot().Violations
		}
		for _, a := range au.nodes {
			if a != nil {
				n += a.Snapshot().Violations
			}
		}
	}
	return n
}

// BurstLatency returns the engine's burst-enforcement-latency quantile
// digest (nanoseconds, merged across shards); an empty snapshot without an
// Observer.
func (e *Engine) BurstLatency() obs.DigestSnapshot {
	if e.cfg.Observer == nil {
		return obs.DigestSnapshot{}
	}
	return e.cfg.Observer.BurstLatencyDigest()
}
