// Warm-restart snapshots: Engine.Snapshot serializes every snapshottable
// aggregate's enforcer state (read in-band on its shard, so each blob is a
// consistent post-burst state), and Engine.Restore loads the blobs into a
// fresh engine whose aggregates were re-registered under the same ids. A
// restarted proxy that restores its snapshot resumes enforcement with the
// phantom occupancy, burst-control windows and token levels it had at
// snapshot time — instead of starting empty and re-admitting a slow-start
// burst storm, restart-synchronized across every subscriber at once.
package mbox

import (
	"errors"
	"fmt"

	"bcpqp/internal/enforcer"
)

// Engine-level snapshot framing.
const (
	snapshotMagic   = "BQSN"
	snapshotVersion = 1
)

// ErrNoSnapshot reports that an aggregate's enforcer does not implement
// enforcer.Snapshotter. Test with errors.Is.
var ErrNoSnapshot = errors.New("enforcer is not snapshottable")

// ErrBadSnapshot reports an engine snapshot blob that is not a valid
// BQSN-framed snapshot (wrong magic, unknown version, or corrupt framing).
// Test with errors.Is.
var ErrBadSnapshot = errors.New("invalid engine snapshot")

// AggregateSnapshot is one aggregate's serialized enforcer state.
type AggregateSnapshot struct {
	// ID is the aggregate id the state belongs to.
	ID string
	// State is the enforcer's versioned blob (enforcer.Snapshotter).
	State []byte
}

// Snapshot is a warm-restart image of an engine's enforcement state.
type Snapshot struct {
	Aggregates []AggregateSnapshot
}

// MarshalBinary implements encoding.BinaryMarshaler with a versioned
// little-endian framing:
//
//	4 bytes magic "BQSN"
//	u32 version (=1)
//	u32 aggregate count
//	per aggregate: length-prefixed id, length-prefixed state blob
func (s *Snapshot) MarshalBinary() ([]byte, error) {
	var enc enforcer.Enc
	for _, c := range []byte(snapshotMagic) {
		enc.U8(c)
	}
	enc.U32(snapshotVersion)
	enc.U32(uint32(len(s.Aggregates)))
	for _, a := range s.Aggregates {
		enc.Bytes([]byte(a.ID))
		enc.Bytes(a.State)
	}
	return enc.Out(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler. The decode is
// fuzz-hardened: truncated input, hostile length prefixes and trailing
// garbage all produce errors, never panics or large speculative
// allocations.
func (s *Snapshot) UnmarshalBinary(data []byte) error {
	d := enforcer.NewDec(data)
	var magic [4]byte
	for i := range magic {
		magic[i] = d.U8()
	}
	if d.Err() == nil && string(magic[:]) != snapshotMagic {
		return fmt.Errorf("mbox: %w: bad magic %q", ErrBadSnapshot, magic[:])
	}
	if v := d.U32(); d.Err() == nil && v != snapshotVersion {
		return fmt.Errorf("mbox: %w: unsupported version %d (want %d)", ErrBadSnapshot, v, snapshotVersion)
	}
	n := d.U32()
	if d.Err() != nil {
		return fmt.Errorf("mbox: %w: %v", ErrBadSnapshot, d.Err())
	}
	// Entries are appended as they decode; a hostile count cannot drive a
	// large allocation because every entry consumes at least 8 bytes of
	// input (two length prefixes) and the decoder fails on underflow.
	aggs := make([]AggregateSnapshot, 0, min(int(n), len(data)/8))
	seen := make(map[string]bool, cap(aggs))
	for i := uint32(0); i < n; i++ {
		id := string(d.Bytes())
		state := d.Bytes()
		if d.Err() != nil {
			return fmt.Errorf("mbox: %w: entry %d: %v", ErrBadSnapshot, i, d.Err())
		}
		if seen[id] {
			return fmt.Errorf("mbox: %w: duplicate aggregate %q", ErrBadSnapshot, id)
		}
		seen[id] = true
		// Copy the state out of the shared input buffer so the snapshot
		// owns its memory.
		aggs = append(aggs, AggregateSnapshot{ID: id, State: append([]byte(nil), state...)})
	}
	if err := d.Finish(); err != nil {
		return fmt.Errorf("mbox: %w: %v", ErrBadSnapshot, err)
	}
	s.Aggregates = aggs
	return nil
}

// SnapshotAggregate serializes one aggregate's enforcer state, read in-band
// on its shard (so it reflects every packet submitted before the call and
// no torn mid-burst state). ErrNoSnapshot when the enforcer does not
// implement enforcer.Snapshotter.
func (e *Engine) SnapshotAggregate(id string) ([]byte, error) {
	var blob []byte
	var snapErr error
	err := e.control(id, func(enf enforcer.Enforcer) {
		sn, ok := enf.(enforcer.Snapshotter)
		if !ok {
			snapErr = fmt.Errorf("mbox: aggregate %q (%T): %w", id, enf, ErrNoSnapshot)
			return
		}
		blob, snapErr = sn.SnapshotState()
	})
	if err != nil {
		return nil, err
	}
	return blob, snapErr
}

// RestoreAggregate loads a blob produced by SnapshotAggregate into an
// aggregate's enforcer, in-band on its shard. The enforcer must have the
// same configuration the blob was taken under; its RestoreState validates
// the fit.
func (e *Engine) RestoreAggregate(id string, state []byte) error {
	var restoreErr error
	err := e.control(id, func(enf enforcer.Enforcer) {
		sn, ok := enf.(enforcer.Snapshotter)
		if !ok {
			restoreErr = fmt.Errorf("mbox: aggregate %q (%T): %w", id, enf, ErrNoSnapshot)
			return
		}
		restoreErr = sn.RestoreState(state)
	})
	if err != nil {
		return err
	}
	return restoreErr
}

// Snapshot captures a warm-restart image of every snapshottable aggregate.
// Aggregates whose enforcers do not implement enforcer.Snapshotter are
// skipped (they restart cold); per-aggregate blobs are each internally
// consistent but the image is not a global cut — aggregates keep enforcing
// while others are being snapshotted, exactly as a live middlebox must.
// Aggregates added or removed concurrently may or may not appear.
func (e *Engine) Snapshot() (*Snapshot, error) {
	t := e.table.Load()
	if t.closed {
		return nil, fmt.Errorf("mbox: engine closed")
	}
	snap := &Snapshot{}
	for _, agg := range t.slots {
		if agg == nil {
			continue
		}
		if _, ok := agg.enf.(enforcer.Snapshotter); !ok {
			continue
		}
		var blob []byte
		var snapErr error
		err := e.controlAgg(agg, func(enf enforcer.Enforcer) {
			blob, snapErr = enf.(enforcer.Snapshotter).SnapshotState()
		})
		if err != nil {
			return nil, fmt.Errorf("mbox: snapshotting %q: %w", agg.id, err)
		}
		if snapErr != nil {
			return nil, fmt.Errorf("mbox: snapshotting %q: %w", agg.id, snapErr)
		}
		snap.Aggregates = append(snap.Aggregates, AggregateSnapshot{ID: agg.id, State: blob})
	}
	return snap, nil
}

// Restore loads a snapshot into the engine: every aggregate named in the
// snapshot must already be registered (under the same id, with an enforcer
// configured as at snapshot time) and is restored in-band on its shard.
// Registered aggregates absent from the snapshot are left as they are —
// they simply start cold. Restore stops at the first failure; aggregates
// restored before it keep their restored state.
func (e *Engine) Restore(s *Snapshot) error {
	for _, a := range s.Aggregates {
		if err := e.RestoreAggregate(a.ID, a.State); err != nil {
			return err
		}
	}
	return nil
}
