package mbox

import (
	"fmt"
	"time"

	"bcpqp/internal/enforcer"
	"bcpqp/internal/obs"
	"bcpqp/internal/packet"
	"bcpqp/internal/sched"
	"bcpqp/internal/units"
)

// Per-tree handle namespaces.
//
// A tree aggregate (one whose enforcer implements enforcer.TreeEnforcer —
// a ptree policy tree or a cascade chain) hosts a namespace of node
// addresses under its one registry slot: a LeafHandle is (aggregate
// handle, node), minted by Leaf and carried on the datapath next to the
// packets. The registry itself stays flat — one slot, one generation tag,
// one idle-TTL stamp, one quarantine breaker per tree — so a million-leaf
// tree costs the table exactly one entry, and removing or evicting the
// aggregate invalidates every LeafHandle of the tree at once through the
// same generation mechanism that protects plain handles.
//
// A flat single-enforcer aggregate participates as the degenerate one-node
// tree: node 0 addresses the enforcer itself, so node-addressed control
// (NodeStats, SetNodeRate) and Leaf(h, 0) work uniformly over flat
// aggregates, chains and trees.

// LeafHandle addresses one node of an aggregate on the datapath: packets
// submitted through it enter the aggregate's policy tree at that node
// (normally a leaf — hence the name — but interior ingress is allowed, see
// enforcer.TreeEnforcer). The zero LeafHandle is invalid.
type LeafHandle struct {
	h    Handle
	node enforcer.NodeID
}

// NoLeafHandle is the invalid leaf handle returned alongside errors.
var NoLeafHandle = LeafHandle{h: NoHandle, node: enforcer.NoNode}

// Aggregate returns the whole-aggregate handle the leaf belongs to.
func (lh LeafHandle) Aggregate() Handle { return lh.h }

// Node returns the addressed tree node; NoNode for a flat aggregate's
// unified node-0 handle (whole-aggregate submission).
func (lh LeafHandle) Node() enforcer.NodeID { return lh.node }

// AddTree registers a node-addressable enforcer tree for aggregate id.
// The tree must also implement enforcer.Enforcer (whole-aggregate
// submission through the plain handle routes packets to leaves by class;
// *ptree.Tree and *cascade.Cascade both do), which keeps every existing
// engine surface — Submit, Stats, Update, snapshots, eviction — working
// unchanged on tree aggregates. Node addressing is layered on top: mint
// per-node handles with Leaf, submit with SubmitLeaf/SubmitLeafBatch,
// control nodes with UpdateNode/SetNodeRate/SetNodePolicy/NodeStats.
func (e *Engine) AddTree(id string, tree enforcer.TreeEnforcer, emit Emit) (Handle, error) {
	enf, ok := tree.(enforcer.Enforcer)
	if !ok {
		return NoHandle, fmt.Errorf("mbox: tree for %q (%T) does not implement enforcer.Enforcer", id, tree)
	}
	return e.Add(id, enf, emit)
}

// Leaf mints a node-addressed handle inside aggregate h's namespace. The
// node must be in the tree's range; for a flat (non-tree) aggregate only
// node 0 — the enforcer itself — is addressable, and the minted handle is
// the whole-aggregate one. Node validity is checked here, once: tree
// topology is immutable, so a LeafHandle stays node-valid for the
// aggregate's lifetime and SubmitLeaf repeats only the generation check.
func (e *Engine) Leaf(h Handle, node enforcer.NodeID) (LeafHandle, error) {
	agg, err := e.resolve(h)
	if err != nil {
		return NoLeafHandle, err
	}
	if agg.tree == nil {
		if node != 0 {
			return NoLeafHandle, fmt.Errorf("mbox: aggregate %q is flat, node %d: %w",
				agg.id, node, ErrBadNode)
		}
		return LeafHandle{h: h, node: enforcer.NoNode}, nil
	}
	if int(node) < 0 || int(node) >= agg.tree.NumNodes() {
		return NoLeafHandle, fmt.Errorf("mbox: aggregate %q node %d out of range [0,%d): %w",
			agg.id, node, agg.tree.NumNodes(), ErrBadNode)
	}
	return LeafHandle{h: h, node: node}, nil
}

// SubmitLeaf hands one packet to a tree node. Like Submit it never blocks:
// the packet joins the owning shard's pending coalesced burst carrying its
// node address, and consecutive same-(aggregate, node) packets are run
// through the tree's batch path together.
func (e *Engine) SubmitLeaf(lh LeafHandle, pkt packet.Packet) error {
	agg, err := e.resolve(lh.h)
	if err != nil {
		return err
	}
	s := agg.shard
	s.mu.Lock()
	b := s.staged
	if b == nil {
		b = e.getBurst()
		s.staged = b
	}
	b.pkts = append(b.pkts, pkt)
	b.aggs = append(b.aggs, agg)
	b.nodes = append(b.nodes, lh.node)
	if len(b.pkts) >= e.cfg.FlushBurst {
		s.staged = nil
		e.enqueue(s, b)
	}
	s.mu.Unlock()
	return nil
}

// SubmitLeafBatch hands a whole burst for one tree node to its shard in a
// single ring operation — the preferred node-addressed ingress. Semantics
// match SubmitBatch: packets are copied into an engine-owned pooled
// buffer, any pending coalesced burst flushes first for per-producer FIFO
// order, and steady-state submission performs no allocation.
func (e *Engine) SubmitLeafBatch(lh LeafHandle, pkts []packet.Packet) error {
	agg, err := e.resolve(lh.h)
	if err != nil {
		return err
	}
	if len(pkts) == 0 {
		return nil
	}
	b := e.getBurst()
	b.agg = agg
	b.node = lh.node
	b.pkts = append(b.pkts, pkts...)
	s := agg.shard
	s.mu.Lock()
	if st := s.staged; st != nil {
		s.staged = nil
		e.enqueue(s, st)
	}
	e.enqueue(s, b)
	s.mu.Unlock()
	return nil
}

// nodeReconfigurer resolves the Reconfigurer behind (aggregate, node):
// the tree node's, or the enforcer itself for a flat aggregate's node 0.
// Must run on the shard goroutine.
func nodeReconfigurer(agg *aggregate, node enforcer.NodeID) (enforcer.Reconfigurer, error) {
	if agg.tree != nil {
		return agg.tree.NodeReconfigurer(node)
	}
	if node != 0 {
		return nil, fmt.Errorf("mbox: aggregate %q is flat, node %d: %w", agg.id, node, ErrBadNode)
	}
	r, ok := agg.enf.(enforcer.Reconfigurer)
	if !ok {
		return nil, fmt.Errorf("mbox: aggregate %q (%T): %w", agg.id, agg.enf, ErrNotReconfigurable)
	}
	return r, nil
}

// UpdateNode applies a live reconfiguration to one tree node, in place and
// in-band with the same guarantees as Update: fn runs on the owning shard
// goroutine with the engine clock read there, serialized against the
// aggregate's bursts, and node admission state survives the change — the
// Theorem 1 bound holds piecewise across it, per node.
func (e *Engine) UpdateNode(id string, node enforcer.NodeID, fn func(now time.Duration, r enforcer.Reconfigurer) error) error {
	agg, err := e.aggByID(id)
	if err != nil {
		return err
	}
	agg.lastActive.Store(time.Now().UnixNano())
	var uerr error
	if cerr := e.controlAgg(agg, func(enforcer.Enforcer) {
		r, rerr := nodeReconfigurer(agg, node)
		if rerr != nil {
			uerr = rerr
			return
		}
		uerr = fn(e.cfg.Clock(), r)
	}); cerr != nil {
		return cerr
	}
	return uerr
}

// SetNodeRate changes one tree node's ceiling rate in-band, preserving its
// admission state (see UpdateNode). An armed per-node conformance auditor
// is rebased to the new rate atomically with the node change (same in-band
// closure, same virtual time), preserving the piecewise per-node bound.
func (e *Engine) SetNodeRate(id string, node enforcer.NodeID, rate units.Rate) error {
	agg, err := e.aggByID(id)
	if err != nil {
		return err
	}
	agg.lastActive.Store(time.Now().UnixNano())
	var uerr error
	if cerr := e.controlAgg(agg, func(enforcer.Enforcer) {
		r, rerr := nodeReconfigurer(agg, node)
		if rerr != nil {
			uerr = rerr
			return
		}
		now := e.cfg.Clock()
		if uerr = r.SetRate(now, rate); uerr != nil {
			return
		}
		if au := agg.audit.Load(); au != nil && int(node) >= 0 && int(node) < len(au.nodes) {
			if a := au.nodes[node]; a != nil {
				a.Rebase(now, int64(rate))
			}
		}
	}); cerr != nil {
		return cerr
	}
	if uerr == nil {
		e.recordControlNode(id, node, obs.KindRateUpdate)
	}
	return uerr
}

// SetNodePolicy changes one tree node's rate-sharing policy in-band,
// preserving its admission state (see UpdateNode). The engine takes
// ownership of the policy object.
func (e *Engine) SetNodePolicy(id string, node enforcer.NodeID, policy *sched.Policy) error {
	err := e.UpdateNode(id, node, func(now time.Duration, r enforcer.Reconfigurer) error {
		return r.SetPolicy(now, policy)
	})
	if err == nil {
		e.recordControlNode(id, node, obs.KindPolicyUpdate)
	}
	return err
}

// NodeStats reads one tree node's accounting through an in-band barrier,
// so it reflects every packet submitted before the call. Interior nodes
// account their whole subtree. For a flat aggregate, node 0 reads the
// enforcer's own stats.
func (e *Engine) NodeStats(id string, node enforcer.NodeID) (enforcer.Stats, error) {
	agg, err := e.aggByID(id)
	if err != nil {
		return enforcer.Stats{}, err
	}
	var out enforcer.Stats
	var statErr error
	err = e.controlAgg(agg, func(enf enforcer.Enforcer) {
		if agg.tree != nil {
			out, statErr = agg.tree.NodeStats(node)
			return
		}
		if node != 0 {
			statErr = fmt.Errorf("mbox: aggregate %q is flat, node %d: %w", id, node, ErrBadNode)
			return
		}
		if sr, ok := enf.(enforcer.StatsReader); ok {
			out = sr.EnforcerStats()
		} else {
			statErr = fmt.Errorf("mbox: aggregate %q: %w", id, ErrNoStats)
		}
	})
	if err != nil {
		return out, err
	}
	return out, statErr
}

// recordControlNode publishes a node-attributed control-plane trace event.
// No-op without an Observer.
func (e *Engine) recordControlNode(id string, node enforcer.NodeID, kind obs.Kind) {
	if e.cfg.Observer == nil {
		return
	}
	ev := obs.Event{Kind: kind, Shard: -1, Agg: -1, Node: int32(node)}
	if agg, err := e.aggByID(id); err == nil {
		ev.Agg = int64(agg.h)
	}
	e.cfg.Observer.Record(ev)
}
