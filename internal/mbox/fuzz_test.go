package mbox

import (
	"bytes"
	"testing"
)

// FuzzSnapshotDecode hardens the engine snapshot wire format against
// hostile input: Snapshot.UnmarshalBinary must never panic or allocate
// proportionally to a lying length prefix, and any blob it accepts must
// re-encode canonically (marshal → unmarshal is the identity on the
// decoded value).
func FuzzSnapshotDecode(f *testing.F) {
	// Seed with well-formed images of several shapes, so mutation starts
	// from deep inside the format rather than at the magic check.
	for _, s := range []*Snapshot{
		{},
		{Aggregates: []AggregateSnapshot{{ID: "a", State: []byte{1, 2, 3}}}},
		{Aggregates: []AggregateSnapshot{
			{ID: "sub-0", State: bytes.Repeat([]byte{0xab}, 64)},
			{ID: "sub-1", State: nil},
			{ID: "", State: []byte{0}},
		}},
	} {
		blob, err := s.MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(blob)
	}
	f.Add([]byte(snapshotMagic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		var s Snapshot
		if err := s.UnmarshalBinary(data); err != nil {
			return // rejected is fine; panicking or over-allocating is not
		}
		// Accepted input must round-trip exactly.
		re, err := s.MarshalBinary()
		if err != nil {
			t.Fatalf("re-marshal of accepted snapshot failed: %v", err)
		}
		var s2 Snapshot
		if err := s2.UnmarshalBinary(re); err != nil {
			t.Fatalf("re-decode of own encoding failed: %v", err)
		}
		if len(s2.Aggregates) != len(s.Aggregates) {
			t.Fatalf("round trip changed aggregate count: %d != %d", len(s2.Aggregates), len(s.Aggregates))
		}
		for i := range s.Aggregates {
			if s2.Aggregates[i].ID != s.Aggregates[i].ID ||
				!bytes.Equal(s2.Aggregates[i].State, s.Aggregates[i].State) {
				t.Fatalf("round trip changed aggregate %d", i)
			}
		}
	})
}
