package mbox

// Lifecycle and control-plane tests: bounded-memory aggregate churn,
// capacity caps, idle-TTL eviction, final-stats drain semantics, in-band
// hot reconfiguration (with the piecewise Theorem-1 bound across a rate
// change), warm-restart snapshots with byte-identical replay, and a -race
// churn test proving generation tags prevent cross-aggregate verdict bleed.

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bcpqp/internal/enforcer"
	"bcpqp/internal/faultinject"
	"bcpqp/internal/packet"
	"bcpqp/internal/phantom"
	"bcpqp/internal/tbf"
	"bcpqp/internal/units"
)

// ---------------------------------------------------------------------------
// Bounded-memory churn.

// TestChurnBoundedRegistry adds and removes 1e5 short-lived aggregates
// (with traffic) and asserts the registry does not grow: slots are
// recycled through the free list, the table's high-water mark stays at the
// peak live count, and the heap is stable.
func TestChurnBoundedRegistry(t *testing.T) {
	e := New(Config{Shards: 2, MaxAggregates: 64})
	defer e.Close()

	if _, err := e.Add("stable", tbf.MustNew(8*units.Mbps, 64*units.MSS), nil); err != nil {
		t.Fatal(err)
	}

	cycles := 100000
	if testing.Short() {
		cycles = 5000
	}

	// Warm up the slot table and pools, then measure heap growth across
	// the churn itself.
	for i := 0; i < 64; i++ {
		id := fmt.Sprintf("warm%d", i&7)
		h, err := e.Add(id, tbf.MustNew(units.Mbps, 50*units.MSS), nil)
		if err != nil {
			t.Fatal(err)
		}
		_ = e.Submit(h, pkt(i))
		if _, err := e.Remove(id); err != nil {
			t.Fatal(err)
		}
	}
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	for i := 0; i < cycles; i++ {
		id := fmt.Sprintf("churn%d", i&7)
		h, err := e.Add(id, tbf.MustNew(units.Mbps, 50*units.MSS), nil)
		if err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
		if i&63 == 0 {
			if err := e.Submit(h, pkt(i)); err != nil {
				t.Fatalf("cycle %d: %v", i, err)
			}
		}
		if _, err := e.Remove(id); err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
	}

	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)

	if got := e.Len(); got != 1 {
		t.Errorf("Len = %d after churn, want 1", got)
	}
	e.mu.Lock()
	hwm, free := len(e.slotGen), len(e.freeSlots)
	e.mu.Unlock()
	// Only one churn aggregate is ever live at a time on top of the
	// stable one and the 8-way warmup, so the high-water mark must stay
	// tiny — far below the cycle count and below the configured cap.
	if hwm > 16 {
		t.Errorf("slot high-water mark = %d after %d cycles, want <= 16 (registry must not grow)", hwm, cycles)
	}
	if free > hwm {
		t.Errorf("free list %d exceeds slot table %d", free, hwm)
	}
	// Heap must be stable: all per-cycle state is garbage after Remove.
	// Allow generous slack for GC noise and pooled buffers.
	if grew := int64(after.HeapAlloc) - int64(before.HeapAlloc); grew > 8<<20 {
		t.Errorf("heap grew %d bytes across %d churn cycles (leak)", grew, cycles)
	}
}

func TestAddTableFull(t *testing.T) {
	e := New(Config{Shards: 1, MaxAggregates: 2})
	defer e.Close()
	for i := 0; i < 2; i++ {
		if _, err := e.Add(fmt.Sprintf("a%d", i), tbf.MustNew(units.Mbps, 10*units.MSS), nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Add("overflow", tbf.MustNew(units.Mbps, 10*units.MSS), nil); !errors.Is(err, ErrTableFull) {
		t.Fatalf("Add over capacity: err = %v, want ErrTableFull", err)
	}
	if _, err := e.Remove("a0"); err != nil {
		t.Fatal(err)
	}
	// Capacity is live count, not high-water mark: a freed slot is usable.
	if _, err := e.Add("again", tbf.MustNew(units.Mbps, 10*units.MSS), nil); err != nil {
		t.Fatalf("Add after Remove under cap: %v", err)
	}
}

// ---------------------------------------------------------------------------
// Final stats on removal: drain semantics.

// TestRemoveReturnsFinalStats proves Remove's documented drain semantics:
// bursts submitted (successfully) before Remove are still enforced, and the
// returned Stats are the aggregate's complete final accounting.
func TestRemoveReturnsFinalStats(t *testing.T) {
	e := New(Config{Shards: 1, QueueDepth: 1 << 12})
	defer e.Close()
	h, err := e.Add("x", tbf.MustNew(50*units.Mbps, 1000*units.MSS), nil)
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	if err := e.SubmitBatch(h, burstOf(n, 0)); err != nil {
		t.Fatal(err)
	}
	// No barrier before Remove: the burst may still be queued. Remove's
	// final-stats read rides the ordered ring behind it.
	st, err := e.Remove("x")
	if err != nil {
		t.Fatal(err)
	}
	if st.AcceptedPackets != n || st.AcceptedBytes != int64(n*units.MSS) {
		t.Errorf("final stats = %+v, want %d accepted packets / %d bytes", st, n, n*units.MSS)
	}
	if st.DroppedPackets != 0 {
		t.Errorf("final stats dropped %d packets, want 0 (bucket was deep)", st.DroppedPackets)
	}
	// Removal stands even when the enforcer exposes no stats; the error
	// qualifies the Stats, not the removal.
	if _, err := e.Add("mute", statlessEnforcer{}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Remove("mute"); !errors.Is(err, ErrNoStats) {
		t.Errorf("Remove of stats-less enforcer: err = %v, want ErrNoStats", err)
	}
	if _, err := e.Lookup("mute"); err == nil {
		t.Error("stats-less aggregate still registered after Remove")
	}
}

// ---------------------------------------------------------------------------
// Idle-TTL eviction.

type eviction struct {
	id    string
	final enforcer.Stats
}

func TestIdleTTLEviction(t *testing.T) {
	evicted := make(chan eviction, 16)
	e := New(Config{
		Shards:        1,
		IdleTTL:       40 * time.Millisecond,
		SweepInterval: 5 * time.Millisecond,
		OnEvict:       func(id string, final enforcer.Stats) { evicted <- eviction{id, final} },
	})
	defer e.Close()

	hIdle, err := e.Add("idle", tbf.MustNew(50*units.Mbps, 1000*units.MSS), nil)
	if err != nil {
		t.Fatal(err)
	}
	hBusy, err := e.Add("busy", tbf.MustNew(50*units.Mbps, 1000*units.MSS), nil)
	if err != nil {
		t.Fatal(err)
	}

	// Give the idle aggregate some history, then let it go quiet while
	// the busy one keeps receiving traffic.
	const idlePkts = 7
	if err := e.SubmitBatch(hIdle, burstOf(idlePkts, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Stats("idle"); err != nil { // barrier: history processed
		t.Fatal(err)
	}

	deadline := time.After(5 * time.Second)
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	var ev eviction
wait:
	for {
		select {
		case <-tick.C:
			_ = e.Submit(hBusy, pkt(1)) // keep "busy" alive
		case ev = <-evicted:
			break wait
		case <-deadline:
			t.Fatal("idle aggregate never evicted")
		}
	}

	if ev.id != "idle" {
		t.Fatalf("evicted %q, want %q", ev.id, "idle")
	}
	if ev.final.AcceptedPackets != idlePkts {
		t.Errorf("eviction final stats = %+v, want %d accepted packets", ev.final, idlePkts)
	}
	if got := e.Evicted.Load(); got != 1 {
		t.Errorf("Evicted = %d, want 1", got)
	}
	if err := e.Submit(hIdle, pkt(0)); !errors.Is(err, ErrStale) {
		t.Errorf("submit to evicted aggregate: err = %v, want ErrStale", err)
	}
	if _, err := e.Lookup("busy"); err != nil {
		t.Errorf("active aggregate evicted: %v", err)
	}
	// An Update counts as activity: reconfigure "busy", stop its traffic
	// briefly, and it must still be present within one more TTL window.
	if err := e.SetRate("busy", 10*units.Mbps); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // < IdleTTL since the Update
	if _, err := e.Lookup("busy"); err != nil {
		t.Errorf("aggregate evicted right after Update: %v", err)
	}
}

// ---------------------------------------------------------------------------
// Hot reconfiguration error paths.

func TestUpdateErrors(t *testing.T) {
	e := New(Config{Shards: 1})
	defer e.Close()
	if _, err := e.Add("mute", statlessEnforcer{}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Add("tb", tbf.MustNew(units.Mbps, 10*units.MSS), nil); err != nil {
		t.Fatal(err)
	}

	if err := e.SetRate("mute", units.Mbps); !errors.Is(err, ErrNotReconfigurable) {
		t.Errorf("SetRate on plain enforcer: err = %v, want ErrNotReconfigurable", err)
	}
	if err := e.SetPolicy("tb", nil); !errors.Is(err, enforcer.ErrNoPolicy) {
		t.Errorf("SetPolicy on token bucket: err = %v, want enforcer.ErrNoPolicy", err)
	}
	if err := e.SetRate("nope", units.Mbps); err == nil {
		t.Error("SetRate on unknown aggregate accepted")
	}
	if err := e.SetRate("tb", -units.Mbps); err == nil {
		t.Error("negative rate accepted")
	}
	// Update propagates fn's error verbatim.
	sentinel := errors.New("boom")
	if err := e.Update("tb", func(time.Duration, enforcer.Enforcer) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Errorf("Update error = %v, want sentinel", err)
	}
}

// ---------------------------------------------------------------------------
// Piecewise Theorem-1 bound across an in-band rate change.

// TestChaosRateChangePiecewiseTBF drives a saturating load through a token
// bucket, changes its rate in-band mid-trace, and asserts the admitted
// bytes obey the piecewise Theorem-1 bound
//
//	accepted <= B + r1·t_b + r2·(T - t_b) + slack
//
// with a SINGLE bucket B across the change. An implementation that tears
// the enforcer down and recreates it (or refills the bucket) would admit an
// extra ~B at the boundary and blow the bound — the load depletes the
// bucket before the switch precisely to make that visible. A seeded
// always-panicking neighbour shares the shard so the bound is proven under
// fault-isolation pressure, not just in a quiet engine.
func TestChaosRateChangePiecewiseTBF(t *testing.T) {
	const step = 100 * time.Microsecond
	clock := &fakeClock{step: step}
	e := New(Config{Shards: 1, Clock: clock.now, QueueDepth: 1 << 14, PanicThreshold: 1})
	defer e.Close()

	const (
		r1     = 16 * units.Mbps
		r2     = 4 * units.Mbps
		bucket = 64 * units.MSS
	)
	h, err := e.Add("sub", tbf.MustNew(r1, bucket), nil)
	if err != nil {
		t.Fatal(err)
	}
	victim := faultinject.New(tbf.MustNew(8*units.Mbps, 10*units.MSS),
		faultinject.Plan{Seed: 7, Panic: 1})
	hv, err := e.Add("victim", victim, nil)
	if err != nil {
		t.Fatal(err)
	}

	const bursts, burstLen = 400, 32
	submit := func() {
		for i := 0; i < bursts; i++ {
			if err := e.SubmitBatch(h, burstOf(burstLen, i)); err != nil {
				t.Fatal(err)
			}
			if err := e.SubmitBatch(hv, burstOf(4, i)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := e.Stats("sub"); err != nil { // barrier, reads no clock
			t.Fatal(err)
		}
	}

	submit() // phase 1 at r1: saturating, bucket depleted
	// SetRate reads the clock exactly once, in-band on the shard; the
	// boundary time is that reading.
	tBoundary := time.Duration(clock.ticks.Load()+1) * step
	if err := e.SetRate("sub", r2); err != nil {
		t.Fatal(err)
	}
	submit() // phase 2 at r2
	st, err := e.Stats("sub")
	if err != nil {
		t.Fatal(err)
	}
	final := time.Duration(clock.ticks.Load()) * step

	if e.Overloaded.Load() != 0 {
		t.Fatalf("ring shed %d packets; bound accounting needs a lossless run", e.Overloaded.Load())
	}
	refilled := r1.Bytes(tBoundary) + r2.Bytes(final-tBoundary)
	upper := int64(refilled) + bucket + 2*units.MSS
	lower := int64(refilled) + bucket - 2*units.MSS
	if st.AcceptedBytes > upper {
		t.Errorf("accepted %d bytes > piecewise bound %d (rate change leaked a bucket refill?)",
			st.AcceptedBytes, upper)
	}
	if st.AcceptedBytes < lower {
		t.Errorf("accepted %d bytes < %d under saturating load (rate change lost admission state?)",
			st.AcceptedBytes, lower)
	}
	// The panicking neighbour was quarantined, not fatal, and did not
	// perturb the measured aggregate's accounting.
	if q, err := e.Quarantined("victim"); err != nil || !q {
		t.Errorf("Quarantined(victim) = %v, %v; want true", q, err)
	}
}

// TestChaosRateChangePreservesPhantomOccupancy is the phantom-queue variant:
// with the simulated queue FULL at the moment of an in-band SetRate, the
// bytes admitted afterwards are bounded by the new drain rate — the queue's
// occupancy survived the change. A reset (empty queue) would instantly
// re-admit ~QueueSize bytes, an order of magnitude above the bound.
func TestChaosRateChangePreservesPhantomOccupancy(t *testing.T) {
	const step = 100 * time.Microsecond
	clock := &fakeClock{step: step}
	e := New(Config{Shards: 1, Clock: clock.now, QueueDepth: 1 << 14})
	defer e.Close()

	const (
		r1    = 100 * units.Mbps
		r2    = 20 * units.Mbps
		qsize = 256 * units.MSS
	)
	pqp := phantom.MustNew(phantom.Config{Rate: r1, Queues: 1, QueueSize: qsize})
	h, err := e.Add("sub", pqp, nil)
	if err != nil {
		t.Fatal(err)
	}

	burst := make([]packet.Packet, 32)
	for i := range burst {
		p := pkt(0)
		p.Class = 0
		burst[i] = p
	}
	run := func(n int) {
		for i := 0; i < n; i++ {
			if err := e.SubmitBatch(h, burst); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := e.Stats("sub"); err != nil {
			t.Fatal(err)
		}
	}

	run(400) // fill the phantom queue at r1 (offered load >> r1)
	before, err := e.Stats("sub")
	if err != nil {
		t.Fatal(err)
	}
	tBoundary := time.Duration(clock.ticks.Load()+1) * step
	if err := e.SetRate("sub", r2); err != nil {
		t.Fatal(err)
	}
	run(800) // saturate at r2
	after, err := e.Stats("sub")
	if err != nil {
		t.Fatal(err)
	}
	final := time.Duration(clock.ticks.Load()) * step

	if e.Overloaded.Load() != 0 {
		t.Fatalf("ring shed %d packets; bound accounting needs a lossless run", e.Overloaded.Load())
	}
	admitted := after.AcceptedBytes - before.AcceptedBytes
	// Admissions after the change are bounded by what the (still full)
	// queue drained at r2, plus drain batching and packet rounding slack.
	slack := int64(8 * units.MSS)
	upper := int64(r2.Bytes(final-tBoundary)) + slack
	if admitted > upper {
		t.Errorf("admitted %d bytes after SetRate > bound %d (phantom occupancy reset would admit ~%d)",
			admitted, upper, qsize)
	}
	if lower := int64(r2.Bytes(final-tBoundary)) - slack; admitted < lower {
		t.Errorf("admitted %d bytes after SetRate < %d (drains stalled across the change?)",
			admitted, lower)
	}
}

// ---------------------------------------------------------------------------
// Warm-restart snapshots.

func TestEngineSnapshotMarshalRoundTrip(t *testing.T) {
	in := &Snapshot{Aggregates: []AggregateSnapshot{
		{ID: "a", State: []byte{1, 2, 3}},
		{ID: "b", State: nil},
		{ID: "with\x00odd id", State: bytes.Repeat([]byte{0xfe}, 300)},
	}}
	blob, err := in.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var out Snapshot
	if err := out.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if len(out.Aggregates) != len(in.Aggregates) {
		t.Fatalf("round trip lost aggregates: %d != %d", len(out.Aggregates), len(in.Aggregates))
	}
	for i := range in.Aggregates {
		if out.Aggregates[i].ID != in.Aggregates[i].ID ||
			!bytes.Equal(out.Aggregates[i].State, in.Aggregates[i].State) {
			t.Errorf("aggregate %d mismatch: %+v != %+v", i, out.Aggregates[i], in.Aggregates[i])
		}
	}

	for name, corrupt := range map[string][]byte{
		"empty":     {},
		"bad magic": append([]byte("NOPE"), blob[4:]...),
		"truncated": blob[:len(blob)-3],
		"trailing":  append(append([]byte{}, blob...), 0),
		"version":   append([]byte(snapshotMagic), 0xff, 0xff, 0xff, 0xff),
	} {
		var s Snapshot
		if err := s.UnmarshalBinary(corrupt); !errors.Is(err, ErrBadSnapshot) {
			t.Errorf("%s: err = %v, want ErrBadSnapshot", name, err)
		}
	}
	// Duplicate aggregate ids are rejected.
	dup := &Snapshot{Aggregates: []AggregateSnapshot{{ID: "x"}, {ID: "x"}}}
	dblob, err := dup.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := s.UnmarshalBinary(dblob); !errors.Is(err, ErrBadSnapshot) {
		t.Errorf("duplicate id: err = %v, want ErrBadSnapshot", err)
	}
}

// seqRecorder records the Seq of every emitted packet, in emission order.
type seqRecorder struct {
	mu   sync.Mutex
	seqs []int64
}

func (r *seqRecorder) emit(p packet.Packet) {
	r.mu.Lock()
	r.seqs = append(r.seqs, p.Seq)
	r.mu.Unlock()
}

func (r *seqRecorder) snapshot() []int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]int64(nil), r.seqs...)
}

// TestSnapshotRestoreReplayByteIdentical is the warm-restart acceptance
// test: a BC-PQP aggregate processes a deterministic trace; a second engine
// processes the first half, snapshots (through the full MarshalBinary wire
// format), and a THIRD engine restores the snapshot and processes the
// second half. The third engine's emissions, final statistics and final
// enforcer state must be byte-identical to the uninterrupted run — the
// restored proxy resumes exactly where the snapshot was taken, with no
// re-admitted burst.
func TestSnapshotRestoreReplayByteIdentical(t *testing.T) {
	const (
		step     = 100 * time.Microsecond
		bursts   = 600
		splitAt  = 250
		burstLen = 24
		id       = "sub"
	)
	newEnf := func() *phantom.PQP {
		return phantom.MustNew(phantom.Config{
			Rate:         30 * units.Mbps,
			Queues:       4,
			QueueSize:    64 * units.MSS,
			BurstControl: true,
			Window:       5 * time.Millisecond,
		})
	}
	trace := func(i int) []packet.Packet {
		b := make([]packet.Packet, burstLen)
		for j := range b {
			p := pkt((i*7 + j) % 5)
			p.Class = (i + j) % 4
			p.Seq = int64(i*burstLen + j)
			b[j] = p
		}
		return b
	}
	start := func(ticks int64) (*Engine, Handle, *seqRecorder, *fakeClock) {
		clock := &fakeClock{step: step}
		clock.ticks.Store(ticks)
		e := New(Config{Shards: 1, Clock: clock.now, QueueDepth: 1 << 14})
		rec := &seqRecorder{}
		h, err := e.Add(id, newEnf(), rec.emit)
		if err != nil {
			t.Fatal(err)
		}
		return e, h, rec, clock
	}
	feed := func(e *Engine, h Handle, from, to int) {
		for i := from; i < to; i++ {
			if err := e.SubmitBatch(h, trace(i)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := e.Stats(id); err != nil { // barrier, reads no clock
			t.Fatal(err)
		}
	}

	// Run A: uninterrupted reference.
	eA, hA, recA, _ := start(0)
	feed(eA, hA, 0, bursts)
	statsA, err := eA.Stats(id)
	if err != nil {
		t.Fatal(err)
	}
	blobA, err := eA.SnapshotAggregate(id)
	if err != nil {
		t.Fatal(err)
	}
	eA.Close()

	// Run B: first half, then snapshot through the wire format.
	eB, hB, recB, _ := start(0)
	feed(eB, hB, 0, splitAt)
	snap, err := eB.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	wire, err := snap.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	eB.Close()

	// Run C: fresh engine, clock pre-advanced to the split point (run B
	// consumed exactly one clock reading per burst), restore, second half.
	var decoded Snapshot
	if err := decoded.UnmarshalBinary(wire); err != nil {
		t.Fatal(err)
	}
	eC, hC, recC, _ := start(splitAt)
	if err := eC.Restore(&decoded); err != nil {
		t.Fatal(err)
	}
	feed(eC, hC, splitAt, bursts)
	statsC, err := eC.Stats(id)
	if err != nil {
		t.Fatal(err)
	}
	blobC, err := eC.SnapshotAggregate(id)
	if err != nil {
		t.Fatal(err)
	}
	eC.Close()

	// Emissions: A's trace must equal B's prefix followed by C's suffix,
	// element for element.
	a, b, c := recA.snapshot(), recB.snapshot(), recC.snapshot()
	if len(a) != len(b)+len(c) {
		t.Fatalf("emission counts: uninterrupted %d != %d (pre) + %d (post)", len(a), len(b), len(c))
	}
	for i, seq := range a {
		var got int64
		if i < len(b) {
			got = b[i]
		} else {
			got = c[i-len(b)]
		}
		if got != seq {
			t.Fatalf("emission %d: restored run emitted seq %d, uninterrupted %d", i, got, seq)
		}
	}
	// Final statistics and final serialized enforcer state are identical:
	// the restore reproduced occupancy, window and counter state exactly.
	// (Run C's enforcer counts only post-split packets, so compare the
	// uninterrupted totals against snapshot-time + post-split deltas via
	// the serialized state instead: the blobs embed the full counters.)
	if !bytes.Equal(blobA, blobC) {
		t.Errorf("final enforcer state diverged after restore:\nA: %x\nC: %x", blobA, blobC)
	}
	if statsA != statsC {
		t.Errorf("final stats diverged: uninterrupted %+v, restored %+v", statsA, statsC)
	}

	// Restoring into a mismatched receiver fails cleanly.
	eD := New(Config{Shards: 1})
	defer eD.Close()
	if _, err := eD.Add(id, tbf.MustNew(units.Mbps, 10*units.MSS), nil); err != nil {
		t.Fatal(err)
	}
	if err := eD.Restore(&decoded); err == nil {
		t.Error("restore into a differently-configured aggregate succeeded")
	}
	if err := eD.RestoreAggregate("ghost", nil); err == nil {
		t.Error("restore into unregistered aggregate succeeded")
	}
}

func TestSnapshotErrNoSnapshot(t *testing.T) {
	e := New(Config{Shards: 1})
	defer e.Close()
	if _, err := e.Add("mute", statlessEnforcer{}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := e.SnapshotAggregate("mute"); !errors.Is(err, ErrNoSnapshot) {
		t.Errorf("SnapshotAggregate: err = %v, want ErrNoSnapshot", err)
	}
	// Engine-level Snapshot skips it instead of failing.
	snap, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Aggregates) != 0 {
		t.Errorf("snapshot contains %d aggregates, want 0 (non-snapshottable skipped)", len(snap.Aggregates))
	}
}

// ---------------------------------------------------------------------------
// Churn race: generation tags prevent cross-aggregate verdict bleed.

// incEnforcer is pinned to one incarnation of an aggregate id: it records
// how many packets it saw and flags any packet whose Seq does not carry its
// own incarnation number — which would mean a stale handle's traffic bled
// into a different aggregate.
type incEnforcer struct {
	inc   int64
	seen  atomic.Int64
	bleed atomic.Int64
}

func (c *incEnforcer) Submit(_ time.Duration, p packet.Packet) enforcer.Verdict {
	if p.Seq != c.inc {
		c.bleed.Add(1)
	}
	c.seen.Add(1)
	return enforcer.Transmit
}

func (c *incEnforcer) EnforcerStats() enforcer.Stats {
	n := c.seen.Load()
	return enforcer.Stats{AcceptedPackets: n, AcceptedBytes: n * units.MSS}
}

// TestChurnRaceNoVerdictBleed re-creates ONE aggregate id over and over
// while producers hammer it with batches tagged with the incarnation they
// resolved, and concurrent Updates reconfigure whatever incarnation is
// live. Invariants, checked exactly after a clean drain:
//
//   - no enforcer ever sees a packet tagged for a different incarnation
//     (generation-tagged handles cannot alias across recycled slots), and
//   - per incarnation, packets seen == packets successfully submitted:
//     a successful Submit is never silently dropped by churn, and a failed
//     one (ErrStale) never reaches any enforcer.
//
// Run under -race (the chaos CI target does).
func TestChurnRaceNoVerdictBleed(t *testing.T) {
	e := New(Config{Shards: 2, QueueDepth: 1 << 15, CloseTimeout: 10 * time.Second})

	type incarnation struct {
		h   Handle
		inc int64
		enf *incEnforcer
		ok  atomic.Int64 // packets successfully submitted to this incarnation
	}
	var cur atomic.Pointer[incarnation]
	var all []*incarnation

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var staleSeen atomic.Int64

	// Producers: resolve the current incarnation, tag the batch with it.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := make([]packet.Packet, 8)
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Pace below shard capacity: exact reconciliation needs a
				// lossless run (no ring shedding), which the test asserts.
				time.Sleep(10 * time.Microsecond)
				in := cur.Load()
				if in == nil {
					continue
				}
				for j := range buf {
					buf[j] = pkt(g*8 + j)
					buf[j].Seq = in.inc
				}
				err := e.SubmitBatch(in.h, buf)
				switch {
				case err == nil:
					in.ok.Add(int64(len(buf)))
				case errors.Is(err, ErrStale):
					staleSeen.Add(1)
				}
			}
		}(g)
	}
	// Reconfigurer: hot updates against whatever incarnation is live.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(11))
		for {
			select {
			case <-stop:
				return
			default:
			}
			time.Sleep(25 * time.Microsecond)
			_ = e.SetRate("ag", (1+units.Rate(rng.Intn(8)))*units.Mbps) // may miss between incarnations
		}
	}()

	// Controller: churn the "ag" incarnations.
	const incarnations = 150
	for i := int64(1); i <= incarnations; i++ {
		in := &incarnation{inc: i, enf: &incEnforcer{inc: i}}
		h, err := e.Add("ag", in.enf, nil)
		if err != nil {
			t.Fatal(err)
		}
		in.h = h
		all = append(all, in)
		cur.Store(in)
		time.Sleep(200 * time.Microsecond)
		cur.Store(nil)
		st, err := e.Remove("ag")
		if err != nil {
			t.Fatal(err)
		}
		// The final-stats barrier covers every burst enqueued before the
		// removal; late bursts that won the resolve race drain later, so
		// at this point stats can only lag the eventual exact count.
		if st.AcceptedPackets > in.ok.Load() {
			t.Fatalf("incarnation %d: Remove stats %d > %d successful submissions",
				i, st.AcceptedPackets, in.ok.Load())
		}
	}
	close(stop)
	wg.Wait()
	rep := e.Close() // clean Close drains every queued burst through the enforcers
	if !rep.Clean || rep.ShedPackets != 0 || e.Overloaded.Load() != 0 {
		t.Fatalf("unclean drain (report %+v, overloaded %d); exact reconciliation needs a lossless run",
			rep, e.Overloaded.Load())
	}

	var total int64
	for _, in := range all {
		if b := in.enf.bleed.Load(); b != 0 {
			t.Errorf("incarnation %d: %d packets from another incarnation bled in", in.inc, b)
		}
		if seen, ok := in.enf.seen.Load(), in.ok.Load(); seen != ok {
			t.Errorf("incarnation %d: enforcer saw %d packets, %d were successfully submitted",
				in.inc, seen, ok)
		}
		total += in.enf.seen.Load()
	}
	if total == 0 {
		t.Fatal("race run enforced nothing")
	}
	if staleSeen.Load() == 0 {
		t.Log("note: no ErrStale observed this run (timing); bleed invariants still checked")
	}
}
