package mbox

import (
	"errors"
	"fmt"
	"runtime"
	"time"

	"bcpqp/internal/enforcer"
	"bcpqp/internal/packet"
)

// Ring-bypass fast path: per-core run-to-completion submission.
//
// The shard ring decouples producers from enforcement at the cost of one
// channel operation and one cross-core handoff per burst. A run-to-completion
// datapath (the DPDK deployment model the paper benchmarks against) has no
// one to hand off to: the goroutine that read the burst off the wire owns the
// shard and should enforce in place. LocalSubmitter is that path — the caller
// claims the target shard's occupancy word and runs the engine's existing
// enforcement body (panic barrier, quarantine/degrade, observability tallies,
// overload shed gate) inline on its own goroutine, with no channel send.
//
// Safety comes from a single CAS-guarded occupancy word per shard: the shard
// goroutine acquires it around every ring item (data bursts AND in-band
// control operations), and a LocalSubmitter acquires it around every inline
// run. Whoever holds the word has exclusive use of the shard's enforcement
// state (enforcers, verdict scratch, trace sampling state), and the
// CAS/Store pair carries the happens-before edge, so ring items, control
// operations, watchdog reads, Close, and inline runs interleave race-free.
//
// Ordering: an inline submission is synchronous — when SubmitBatch returns,
// the burst has been enforced and emitted — so it is strictly ordered with
// everything the same goroutine does before and after (in particular, a
// control operation issued after an inline submit observes it). Between an
// inline submitter and bursts already queued on the shard ring there is no
// ordering: feed one aggregate through one ingress mode at a time (the
// per-core proxy pins one aggregate per core and never mixes).

// occupancy word states. occFree must be zero (the shard's zero value).
const (
	occFree  int32 = 0
	occShard int32 = 1
	occLocal int32 = 2
)

// ErrWrongShard reports a LocalSubmitter used against an aggregate owned by
// a different shard. Pin the aggregate with AddPinned or mint the submitter
// from the aggregate's own handle. Test with errors.Is.
var ErrWrongShard = errors.New("aggregate not owned by this submitter's shard")

// acquire claims the shard's occupancy word for who, spinning until it is
// free. Holders are short-lived (one burst or one control item), so the spin
// yields rather than parks.
func (s *shard) acquire(who int32) {
	for !s.occ.CompareAndSwap(occFree, who) {
		runtime.Gosched()
	}
}

// tryAcquire is acquire with a deadline: false means the word could not be
// claimed within timeout (a wedged or abandoned holder), so the caller can
// degrade instead of spinning forever.
func (s *shard) tryAcquire(who int32, timeout time.Duration) bool {
	if s.occ.CompareAndSwap(occFree, who) {
		return true
	}
	var start time.Time
	for spins := 0; ; spins++ {
		runtime.Gosched()
		if s.occ.CompareAndSwap(occFree, who) {
			return true
		}
		// Read the clock every 64 spins, not every miss: the common
		// contention (a burst in flight on the shard goroutine) resolves
		// in well under a microsecond.
		if spins&63 == 0 {
			now := time.Now()
			if start.IsZero() {
				start = now
			} else if now.Sub(start) > timeout {
				return false
			}
		}
	}
}

// release frees the shard's occupancy word.
func (s *shard) release() {
	s.occ.Store(occFree)
}

// LocalSubmitter is a shard-affinity handle for ring-bypass burst
// submission. It is minted by Engine.Local for one shard and may only
// submit to aggregates owned by that shard (AddPinned pins an aggregate to
// a chosen shard so a per-core worker can own core, shard, and aggregates
// together).
//
// A LocalSubmitter is a single-goroutine object: one worker drives one
// submitter. Distinct submitters for distinct shards run fully in parallel;
// two submitters for the same shard serialize on the occupancy word.
type LocalSubmitter struct {
	e *Engine
	s *shard
}

// Local returns a ring-bypass submitter bound to the shard that owns h.
func (e *Engine) Local(h Handle) (*LocalSubmitter, error) {
	agg, err := e.resolve(h)
	if err != nil {
		return nil, err
	}
	return &LocalSubmitter{e: e, s: agg.shard}, nil
}

// LocalShard returns a ring-bypass submitter bound to shard index shard
// (pair with AddPinned, which places aggregates on chosen shards).
func (e *Engine) LocalShard(shard int) (*LocalSubmitter, error) {
	if shard < 0 || shard >= len(e.shards) {
		return nil, fmt.Errorf("mbox: shard %d out of range [0,%d)", shard, len(e.shards))
	}
	return &LocalSubmitter{e: e, s: e.shards[shard]}, nil
}

// Shard reports the index of the shard this submitter is bound to.
func (l *LocalSubmitter) Shard() int { return l.s.idx }

// SubmitBatch enforces one burst for h inline on the calling goroutine —
// no ring, no handoff, no copy: the engine never retains pkts (or their
// payloads) past the call, so the caller may reuse the backing buffers
// immediately, which is what makes a zero-copy rx→enforce→tx loop possible.
//
// The run is byte-identical to the ring path: same overload shed gate, same
// panic barrier and quarantine/degrade handling, same verdict tallies and
// trace sampling, same one-clock-read-per-burst arrival stamping. Verdicts
// reach the aggregate's emit hook before SubmitBatch returns.
//
// Errors: ErrStale/invalid handle as usual; ErrWrongShard when h lives on a
// different shard; ErrSaturated when the shard's occupancy word could not
// be claimed within ControlTimeout (a wedged holder — the burst is counted
// shed, mirroring what a full ring does to the queued path).
func (l *LocalSubmitter) SubmitBatch(h Handle, pkts []packet.Packet) error {
	e := l.e
	agg, err := e.resolve(h)
	if err != nil {
		return err
	}
	if agg.shard != l.s {
		return fmt.Errorf("mbox: aggregate %q on shard %d: %w", agg.id, agg.shard.idx, ErrWrongShard)
	}
	if len(pkts) == 0 {
		return nil
	}
	s := l.s
	if p := e.overload; p != nil && p.shedGate(s, agg) {
		e.shedPriority(s, agg, len(pkts))
		return nil
	}
	if !s.tryAcquire(occLocal, e.cfg.ControlTimeout) {
		n := int64(len(pkts))
		e.Overloaded.Add(n)
		s.shed.Add(n)
		e.InlineFallbacks.Add(1)
		return fmt.Errorf("mbox: aggregate %q: %w", agg.id, ErrSaturated)
	}
	defer s.release()
	// Heartbeat/activity stamps mirror process(): a core that only ever
	// submits inline still reads as alive to the watchdog, and its
	// aggregates as active to the idle-TTL sweeper.
	wall := time.Now().UnixNano()
	s.heartbeat.Store(wall)
	agg.lastActive.Store(wall)
	now := e.cfg.Clock()
	e.runBatch(s, now, agg, enforcer.NoNode, pkts)
	end := time.Now().UnixNano()
	s.heartbeat.Store(end)
	s.processed.Add(1)
	if s.obs != nil {
		s.obs.ObserveBurst(end - wall)
	}
	e.InlineBursts.Add(1)
	return nil
}
