// Cluster share application: the one engine entry point the distributed
// budget exchange is allowed to use. A rebalanced share travels through the
// exact same in-band lane as an operator SetRate — serialized onto the
// aggregate's shard between bursts, admission state preserved — so the
// piecewise Theorem-1 bound holds through every rebalance, and a
// misbehaving exchange can never do anything a hot reconfiguration could
// not. The only addition is attribution: a KindShareApply trace event
// distinguishes cluster rebalances from operator changes in the flight
// recorder.
package mbox

import (
	"bcpqp/internal/obs"
	"bcpqp/internal/units"
)

// ApplyShare applies a cluster-rebalanced share to aggregate id via the
// in-band SetRate lane and records a KindShareApply trace event (A = the
// share in bits/sec, B = 1 when it is the conservative fallback floor).
// Errors are SetRate's: unknown aggregate, ErrNotReconfigurable,
// ErrSaturated.
func (e *Engine) ApplyShare(id string, share units.Rate, fallback bool) error {
	if err := e.SetRate(id, share); err != nil {
		return err
	}
	if e.cfg.Observer != nil {
		ev := obs.Event{Kind: obs.KindShareApply, Shard: -1, Agg: -1, Node: -1, A: int64(share)}
		if fallback {
			ev.B = 1
		}
		if agg, err := e.aggByID(id); err == nil {
			ev.Agg = int64(agg.h)
		}
		e.cfg.Observer.Record(ev)
	}
	return nil
}
