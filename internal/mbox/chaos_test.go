package mbox

// Chaos tests: seeded fault injection against the fault-tolerant runtime.
// These run under -race in CI (the chaos job adds -count=3) and assert the
// runtime's core invariants:
//
//   - a panicking enforcer never kills its shard goroutine — healthy
//     aggregates on the same shard keep enforcing within Theorem 1 bounds,
//   - the control plane keeps answering Stats with bounded latency,
//   - Close returns within its deadline even with wedged shards, and
//   - panic/quarantine/degrade counters reconcile exactly with the faults
//     the injectors report having injected.

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bcpqp/internal/enforcer"
	"bcpqp/internal/faultinject"
	"bcpqp/internal/packet"
	"bcpqp/internal/tbf"
	"bcpqp/internal/units"
)

// burstOf builds an n-packet burst for one flow.
func burstOf(n, flow int) []packet.Packet {
	pkts := make([]packet.Packet, n)
	for i := range pkts {
		pkts[i] = pkt(flow + i)
	}
	return pkts
}

// TestChaosPanicQuarantineDeterministic is the deterministic core of the
// fault story on a single shard: a victim enforcer that always panics is
// quarantined by the circuit breaker after exactly PanicThreshold panics,
// its traffic degrades FailClosed, a healthy aggregate sharing the shard is
// untouched, and every counter reconciles exactly with the injected faults.
func TestChaosPanicQuarantineDeterministic(t *testing.T) {
	clock := &fakeClock{step: 100 * time.Microsecond}
	e := New(Config{Shards: 1, Clock: clock.now, QueueDepth: 1 << 12, PanicThreshold: 1})
	defer e.Close()

	victim := faultinject.New(tbf.MustNew(8*units.Mbps, 10*units.MSS),
		faultinject.Plan{Seed: 1, Panic: 1})
	var victimEmitted, healthyEmitted atomic.Int64
	hv, err := e.Add("victim", victim, func(packet.Packet) { victimEmitted.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	hh, err := e.Add("healthy", tbf.MustNew(8*units.Mbps, 64*units.MSS),
		func(packet.Packet) { healthyEmitted.Add(1) })
	if err != nil {
		t.Fatal(err)
	}

	const bursts, burstLen = 10, 8
	for i := 0; i < bursts; i++ {
		if err := e.SubmitBatch(hv, burstOf(burstLen, i)); err != nil {
			t.Fatal(err)
		}
		if err := e.SubmitBatch(hh, burstOf(burstLen, i)); err != nil {
			t.Fatal(err)
		}
	}
	// Stats is a barrier: it rides the ordered ring behind every burst.
	st, err := e.Stats("healthy")
	if err != nil {
		t.Fatal(err)
	}

	// The healthy aggregate saw everything and was actually enforced.
	if p, _ := st.Totals(); p != bursts*burstLen {
		t.Errorf("healthy aggregate saw %d packets, want %d", p, bursts*burstLen)
	}
	if healthyEmitted.Load() == 0 {
		t.Error("healthy aggregate emitted nothing next to a panicking neighbour")
	}

	// First victim run panicked (threshold 1 ⇒ quarantine); the enforcer
	// is bypassed afterwards, so exactly one panic was injected and every
	// victim packet degraded to a counted drop.
	if got := victim.Panics.Load(); got != 1 {
		t.Errorf("injector recorded %d panics, want 1 (quarantine must bypass the enforcer)", got)
	}
	if got := e.Panics.Load(); got != victim.Panics.Load() {
		t.Errorf("engine recovered %d panics, injector injected %d", got, victim.Panics.Load())
	}
	if got := e.DegradedDrops.Load(); got != bursts*burstLen {
		t.Errorf("DegradedDrops = %d, want %d (every victim packet)", got, bursts*burstLen)
	}
	if victimEmitted.Load() != 0 {
		t.Errorf("FailClosed victim emitted %d packets, want 0", victimEmitted.Load())
	}
	fr, err := e.Faults("victim")
	if err != nil {
		t.Fatal(err)
	}
	if !fr.Quarantined || fr.Panics != 1 || fr.Mode != FailClosed || fr.DegradedDrops != bursts*burstLen {
		t.Errorf("victim fault record = %+v", fr)
	}
	if q, err := e.Quarantined("victim"); err != nil || !q {
		t.Errorf("Quarantined(victim) = %v, %v; want true", q, err)
	}
	if q, err := e.Quarantined("healthy"); err != nil || q {
		t.Errorf("Quarantined(healthy) = %v, %v; want false", q, err)
	}
	health := e.Health()
	if len(health.Quarantined) != 1 || health.Quarantined[0] != "victim" {
		t.Errorf("health.Quarantined = %v, want [victim]", health.Quarantined)
	}
	if health.Shards[0].Panics != 1 {
		t.Errorf("shard recorded %d panics, want 1", health.Shards[0].Panics)
	}
}

// TestChaosReinstateAfterTransientFault exercises the breaker re-arm: an
// enforcer that crashes exactly once (MaxPanics 1) is quarantined, then
// Reinstate restores full enforcement.
func TestChaosReinstateAfterTransientFault(t *testing.T) {
	clock := &fakeClock{step: 100 * time.Microsecond}
	e := New(Config{Shards: 1, Clock: clock.now, QueueDepth: 1 << 12, PanicThreshold: 1})
	defer e.Close()

	flaky := faultinject.New(tbf.MustNew(8*units.Mbps, 64*units.MSS),
		faultinject.Plan{Seed: 9, Panic: 1, MaxPanics: 1})
	h, err := e.Add("flaky", flaky, nil)
	if err != nil {
		t.Fatal(err)
	}
	const burstLen = 8
	if err := e.SubmitBatch(h, burstOf(burstLen, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Stats("flaky"); err != nil { // barrier
		t.Fatal(err)
	}
	if q, _ := e.Quarantined("flaky"); !q {
		t.Fatal("transient crash did not quarantine")
	}
	// Traffic during quarantine is degraded, not enforced.
	if err := e.SubmitBatch(h, burstOf(burstLen, 1)); err != nil {
		t.Fatal(err)
	}
	st, err := e.Stats("flaky")
	if err != nil {
		t.Fatal(err)
	}
	if p, _ := st.Totals(); p != 0 {
		t.Errorf("quarantined enforcer saw %d packets, want 0", p)
	}

	if err := e.Reinstate("flaky"); err != nil {
		t.Fatal(err)
	}
	if q, _ := e.Quarantined("flaky"); q {
		t.Fatal("still quarantined after Reinstate")
	}
	if err := e.SubmitBatch(h, burstOf(burstLen, 2)); err != nil {
		t.Fatal(err)
	}
	st, err = e.Stats("flaky")
	if err != nil {
		t.Fatal(err)
	}
	if p, _ := st.Totals(); p != burstLen {
		t.Errorf("reinstated enforcer saw %d packets, want %d", p, burstLen)
	}
	if got := e.Panics.Load(); got != 1 {
		t.Errorf("engine panics = %d, want 1 (transient fault fired once)", got)
	}
	// Reinstate on a healthy aggregate is idempotent; unknown ids error.
	if err := e.Reinstate("flaky"); err != nil {
		t.Errorf("idempotent Reinstate: %v", err)
	}
	if err := e.Reinstate("nope"); err == nil {
		t.Error("Reinstate of unknown aggregate accepted")
	}
}

// TestChaosFailOpenDegrade verifies the availability-over-enforcement
// degrade mode: a quarantined FailOpen aggregate's packets are forwarded
// unenforced and counted, and SetDegradeMode can flip modes live.
func TestChaosFailOpenDegrade(t *testing.T) {
	clock := &fakeClock{step: 100 * time.Microsecond}
	e := New(Config{Shards: 1, Clock: clock.now, QueueDepth: 1 << 12, DegradeMode: FailOpen})
	defer e.Close()

	broken := faultinject.New(tbf.MustNew(units.Mbps, 10*units.MSS),
		faultinject.Plan{Seed: 4, Panic: 1})
	var emitted atomic.Int64
	h, err := e.Add("x", broken, func(packet.Packet) { emitted.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	const bursts, burstLen = 5, 8
	for i := 0; i < bursts; i++ {
		if err := e.SubmitBatch(h, burstOf(burstLen, i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Stats("x"); err != nil { // barrier
		t.Fatal(err)
	}
	if got := emitted.Load(); got != bursts*burstLen {
		t.Errorf("FailOpen forwarded %d packets, want all %d", got, bursts*burstLen)
	}
	if got := e.DegradedPasses.Load(); got != bursts*burstLen {
		t.Errorf("DegradedPasses = %d, want %d", got, bursts*burstLen)
	}
	fr, _ := e.Faults("x")
	if fr.Mode != FailOpen || fr.DegradedPasses != bursts*burstLen {
		t.Errorf("fault record = %+v", fr)
	}

	// Flip to FailClosed live: subsequent traffic drops instead.
	if err := e.SetDegradeMode("x", FailClosed); err != nil {
		t.Fatal(err)
	}
	if err := e.SubmitBatch(h, burstOf(burstLen, 99)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Stats("x"); err != nil { // barrier
		t.Fatal(err)
	}
	if got := emitted.Load(); got != bursts*burstLen {
		t.Errorf("FailClosed still forwarded: emitted %d, want %d", got, bursts*burstLen)
	}
	if got := e.DegradedDrops.Load(); got != burstLen {
		t.Errorf("DegradedDrops = %d, want %d", got, burstLen)
	}
	if err := e.SetDegradeMode("x", DegradeMode(7)); err == nil {
		t.Error("invalid degrade mode accepted")
	}
	if err := e.SetDegradeMode("nope", FailOpen); err == nil {
		t.Error("SetDegradeMode on unknown aggregate accepted")
	}
}

// TestChaosStorm is the storm test the acceptance criteria name: ≥100
// seeded panics/stalls (plus corruption and clock skew) injected across
// every shard while healthy aggregates carry traffic and the control plane
// is polled. Invariants: no shard goroutine is lost, healthy enforcement
// stays within the Theorem 1 upper bound (accepted ≤ r·Δt + B), Stats
// latency stays bounded, Close is clean and in-deadline, and fault counters
// reconcile exactly with the injectors' ground truth.
func TestChaosStorm(t *testing.T) {
	clock := &fakeClock{step: 20 * time.Microsecond}
	const controlTimeout = 50 * time.Millisecond
	e := New(Config{
		Shards:         4,
		QueueDepth:     1 << 14, // deep enough that nothing sheds: conservation stays exact
		FlushBurst:     16,
		ControlTimeout: controlTimeout,
		CloseTimeout:   10 * time.Second,
		Clock:          clock.now,
		PanicThreshold: 3,
	})
	closed := false
	defer func() {
		if !closed {
			e.Close()
		}
	}()

	const (
		faulty   = 16
		healthy  = 16
		bursts   = 400
		burstLen = 8
		rate     = 8 * units.Mbps
		bucket   = int64(100 * units.MSS)
	)
	injectors := make([]*faultinject.Injector, faulty)
	faultyHandles := make([]Handle, faulty)
	for i := 0; i < faulty; i++ {
		plan := faultinject.Plan{Seed: uint64(100 + i)}
		switch i % 4 {
		case 0:
			plan.Panic = 0.05
		case 1:
			plan.Stall, plan.StallFor = 0.4, 200*time.Microsecond
		case 2:
			plan.Corrupt = 0.1
		case 3:
			plan.Skew, plan.SkewBy = 0.1, 5*time.Millisecond
			plan.Stall, plan.StallFor = 0.2, 200*time.Microsecond
		}
		injectors[i] = faultinject.New(tbf.MustNew(rate, bucket), plan)
		h, err := e.Add(fmt.Sprintf("faulty-%d", i), injectors[i], func(packet.Packet) {})
		if err != nil {
			t.Fatal(err)
		}
		faultyHandles[i] = h
	}
	healthyHandles := make([]Handle, healthy)
	var healthyEmitted [healthy]atomic.Int64
	for i := 0; i < healthy; i++ {
		i := i
		h, err := e.Add(fmt.Sprintf("healthy-%d", i), tbf.MustNew(rate, bucket),
			func(p packet.Packet) { healthyEmitted[i].Add(int64(p.Size)) })
		if err != nil {
			t.Fatal(err)
		}
		healthyHandles[i] = h
	}

	// Producers: one goroutine per aggregate, bursts through SubmitBatch.
	var wg sync.WaitGroup
	for i := 0; i < faulty; i++ {
		wg.Add(1)
		go func(h Handle, flow int) {
			defer wg.Done()
			for b := 0; b < bursts; b++ {
				if err := e.SubmitBatch(h, burstOf(burstLen, flow)); err != nil {
					t.Error(err)
					return
				}
			}
		}(faultyHandles[i], i)
	}
	for i := 0; i < healthy; i++ {
		wg.Add(1)
		go func(h Handle, flow int) {
			defer wg.Done()
			for b := 0; b < bursts; b++ {
				if err := e.SubmitBatch(h, burstOf(burstLen, flow)); err != nil {
					t.Error(err)
					return
				}
			}
		}(healthyHandles[i], i)
	}

	// Control-plane poller: Stats on healthy aggregates throughout the
	// storm, with latency recorded. ε covers the ring-drain time of a
	// stalled-but-live shard plus -race/CI scheduling noise; the point is
	// that Stats stays bounded and never approaches a hang.
	pollStop := make(chan struct{})
	var pollWG sync.WaitGroup
	var worstStats atomic.Int64
	pollWG.Add(1)
	go func() {
		defer pollWG.Done()
		for i := 0; ; i++ {
			select {
			case <-pollStop:
				return
			default:
			}
			start := time.Now()
			_, err := e.Stats(fmt.Sprintf("healthy-%d", i%healthy))
			lat := time.Since(start)
			if cur := worstStats.Load(); int64(lat) > cur {
				worstStats.Store(int64(lat))
			}
			if err != nil && !errors.Is(err, ErrSaturated) {
				t.Errorf("Stats during storm: %v", err)
				return
			}
		}
	}()

	wg.Wait()
	close(pollStop)
	pollWG.Wait()

	// Barrier every aggregate, then reconcile. Stats succeeding for an
	// aggregate on every shard proves no shard goroutine was lost. (The
	// barrier also means every submitted burst has been processed, so the
	// injector fault counters are final.)
	finalStats := make(map[string]enforcer.Stats)
	for i := 0; i < faulty; i++ {
		id := fmt.Sprintf("faulty-%d", i)
		st, err := e.Stats(id)
		if err != nil {
			t.Fatalf("Stats(%s) after storm: %v", id, err)
		}
		finalStats[id] = st
	}
	for i := 0; i < healthy; i++ {
		id := fmt.Sprintf("healthy-%d", i)
		st, err := e.Stats(id)
		if err != nil {
			t.Fatalf("Stats(%s) after storm: %v", id, err)
		}
		finalStats[id] = st
	}
	health := e.Health()
	for _, sh := range health.Shards {
		if sh.Processed == 0 {
			t.Errorf("shard %d processed nothing", sh.Shard)
		}
	}

	// Ground truth: enough faults actually fired.
	var injPanics, injStalls, injCorrupt, injSkews int64
	for _, inj := range injectors {
		injPanics += inj.Panics.Load()
		injStalls += inj.Stalls.Load()
		injCorrupt += inj.Corruptions.Load()
		injSkews += inj.Skews.Load()
	}
	if injPanics+injStalls < 100 {
		t.Errorf("storm injected only %d panics+stalls, want ≥100 (panics=%d stalls=%d)",
			injPanics+injStalls, injPanics, injStalls)
	}
	if injCorrupt == 0 || injSkews == 0 {
		t.Errorf("storm injected no corruption (%d) or no skew (%d)", injCorrupt, injSkews)
	}

	// Exact reconciliation against injector ground truth.
	if got := e.Panics.Load(); got != injPanics {
		t.Errorf("engine recovered %d panics, injectors injected %d", got, injPanics)
	}
	if got := e.BadVerdicts.Load(); got != injCorrupt {
		t.Errorf("engine counted %d bad verdicts, injectors corrupted %d", got, injCorrupt)
	}
	for i, inj := range injectors {
		id := fmt.Sprintf("faulty-%d", i)
		fr, err := e.Faults(id)
		if err != nil {
			t.Fatal(err)
		}
		if fr.Panics != inj.Panics.Load() {
			t.Errorf("%s: engine attributed %d panics, injector injected %d",
				id, fr.Panics, inj.Panics.Load())
		}
		wantQuarantined := inj.Panics.Load() >= 3 // PanicThreshold
		if fr.Quarantined != wantQuarantined {
			t.Errorf("%s: quarantined=%v with %d panics (threshold 3)",
				id, fr.Quarantined, fr.Panics)
		}
	}

	// Packet conservation (the queue is deep enough that nothing sheds):
	// every submitted packet was either enforced or counted as degraded.
	if shed := e.Overloaded.Load(); shed != 0 {
		t.Logf("storm shed %d packets; skipping exact conservation", shed)
	} else {
		for i := 0; i < faulty; i++ {
			id := fmt.Sprintf("faulty-%d", i)
			fr, _ := e.Faults(id)
			st := finalStats[id]
			p, _ := st.Totals()
			total := p + fr.DegradedDrops + fr.DegradedPasses
			if total != bursts*burstLen {
				t.Errorf("%s: enforced %d + degraded %d+%d = %d, want %d submitted",
					id, p, fr.DegradedDrops, fr.DegradedPasses, total, bursts*burstLen)
			}
		}
		for i := 0; i < healthy; i++ {
			id := fmt.Sprintf("healthy-%d", i)
			st := finalStats[id]
			p, _ := st.Totals()
			if p != bursts*burstLen {
				t.Errorf("%s: enforcer saw %d packets, want %d", id, p, bursts*burstLen)
			}
		}
	}

	// Theorem 1 upper bound for every healthy aggregate: accepted bytes
	// over the run never exceed r·Δt + B (Δt = final virtual time; the
	// aggregate was active from t≈0, so the window is the whole run).
	finalT := time.Duration(clock.ticks.Load()) * clock.step
	bound := int64(rate.Bytes(finalT)) + bucket + int64(units.MSS)
	for i := 0; i < healthy; i++ {
		id := fmt.Sprintf("healthy-%d", i)
		acc := finalStats[id].AcceptedBytes
		if acc > bound {
			t.Errorf("%s: accepted %d bytes > Theorem 1 bound r·Δt+B = %d", id, acc, bound)
		}
		if acc == 0 {
			t.Errorf("%s: accepted nothing — enforcement wedged by the storm", id)
		}
		if healthyEmitted[i].Load() != acc {
			t.Errorf("%s: emitted %d bytes but enforcer accepted %d",
				id, healthyEmitted[i].Load(), acc)
		}
	}

	// Stats latency stayed bounded throughout (ControlTimeout + ε).
	const statsEpsilon = time.Second
	if worst := time.Duration(worstStats.Load()); worst > controlTimeout+statsEpsilon {
		t.Errorf("worst Stats latency %v exceeds ControlTimeout(%v)+ε(%v)",
			worst, controlTimeout, statsEpsilon)
	}

	// Close drains cleanly and within its deadline.
	start := time.Now()
	rep := e.Close()
	closed = true
	if elapsed := time.Since(start); elapsed > 10*time.Second+2*time.Second {
		t.Errorf("Close took %v, deadline 10s", elapsed)
	}
	if !rep.Clean || rep.AbandonedShards != 0 {
		t.Errorf("storm Close not clean: %+v", rep)
	}
}

// TestChaosCloseDeadlineForceAbandonsWedgedShard wedges a shard forever in
// its emit hook and proves Close still returns within its deadline,
// reporting the abandoned shard and the packets it shed — where the PR 1
// engine deadlocked in e.wg.Wait().
func TestChaosCloseDeadlineForceAbandonsWedgedShard(t *testing.T) {
	gate := make(chan struct{})
	var once sync.Once
	openGate := func() { once.Do(func() { close(gate) }) }
	defer openGate()

	const closeTimeout = 300 * time.Millisecond
	e := New(Config{
		Shards: 1, QueueDepth: 4, FlushBurst: 1,
		ControlTimeout: 20 * time.Millisecond,
		CloseTimeout:   closeTimeout,
	})
	started := make(chan struct{}, 1)
	h, err := e.Add("x", tbf.MustNew(units.Mbps, 1000*units.MSS), func(packet.Packet) {
		select {
		case started <- struct{}{}:
		default:
		}
		<-gate // wedged until the test ends
	})
	if err != nil {
		t.Fatal(err)
	}
	// Wedge the shard on the first packet, then fill the ring behind it.
	if err := e.SubmitBatch(h, burstOf(1, 0)); err != nil {
		t.Fatal(err)
	}
	<-started
	for i := 0; i < 4; i++ {
		if err := e.SubmitBatch(h, burstOf(2, i)); err != nil {
			t.Fatal(err)
		}
	}

	// A control op parked against the wedged shard must be released by
	// Close with an error, not leaked.
	ctrlErr := make(chan error, 1)
	go func() { ctrlErr <- e.Flush("x", func(enforcer.Enforcer) {}) }()

	start := time.Now()
	rep := e.Close()
	elapsed := time.Since(start)
	if elapsed > closeTimeout+2*time.Second {
		t.Errorf("Close took %v with a wedged shard, deadline %v", elapsed, closeTimeout)
	}
	if rep.Clean {
		t.Error("Close reported clean with a permanently wedged shard")
	}
	if rep.AbandonedShards != 1 {
		t.Errorf("AbandonedShards = %d, want 1", rep.AbandonedShards)
	}
	if rep.ShedPackets == 0 {
		t.Error("Close shed nothing despite a full ring on a wedged shard")
	}
	select {
	case err := <-ctrlErr:
		if err == nil {
			t.Error("control op on a wedged shard reported success across Close")
		}
	case <-time.After(5 * time.Second):
		t.Error("control op still parked after Close — the PR 1 deadlock")
	}
	// Idempotent: a second Close returns the same report instantly.
	if rep2 := e.Close(); rep2 != rep {
		t.Errorf("second Close report %+v != first %+v", rep2, rep)
	}
}

// TestChaosWatchdogClassifiesWedgedShard drives a shard into a blocked emit
// and watches the watchdog move it Healthy → Wedged → Healthy.
func TestChaosWatchdogClassifiesWedgedShard(t *testing.T) {
	gate := make(chan struct{})
	var once sync.Once
	openGate := func() { once.Do(func() { close(gate) }) }
	defer openGate()

	e := New(Config{
		Shards: 1, QueueDepth: 8, FlushBurst: 1,
		WatchdogInterval: 5 * time.Millisecond,
		WedgeTimeout:     20 * time.Millisecond,
		CloseTimeout:     500 * time.Millisecond,
	})
	defer e.Close()
	h, err := e.Add("x", tbf.MustNew(units.Mbps, 1000*units.MSS), func(packet.Packet) {
		<-gate
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SubmitBatch(h, burstOf(1, 0)); err != nil {
		t.Fatal(err)
	}

	waitState := func(want ShardState) bool {
		deadline := time.After(5 * time.Second)
		for {
			select {
			case <-deadline:
				return false
			default:
			}
			if h := e.Health(); h.Shards[0].State == want {
				return true
			}
			time.Sleep(time.Millisecond)
		}
	}
	if !waitState(ShardWedged) {
		t.Fatalf("watchdog never classified the blocked shard Wedged: %+v", e.Health().Shards[0])
	}
	if !e.Health().Wedged() {
		t.Error("Health.Wedged() false while a shard is wedged")
	}
	openGate()
	if !waitState(ShardHealthy) {
		t.Fatalf("watchdog never recovered the shard to Healthy: %+v", e.Health().Shards[0])
	}
}

// TestControlEscalationDeterministic pins the ErrSaturated failover path
// step by step: with the shard wedged and the data ring full, a control op
// (1) times out on the ordered ring, (2) fails over to the priority control
// lane and parks there, and only once the lane itself is full does a
// further op (3) escalate to ErrSaturated. Unwedging drains everything and
// every parked op completes.
func TestControlEscalationDeterministic(t *testing.T) {
	gate := make(chan struct{})
	var once sync.Once
	openGate := func() { once.Do(func() { close(gate) }) }
	defer openGate()

	const controlTimeout = 20 * time.Millisecond
	e := New(Config{
		Shards: 1, QueueDepth: 1, FlushBurst: 1,
		ControlTimeout: controlTimeout,
	})
	defer e.Close()
	started := make(chan struct{}, 1)
	h, err := e.Add("x", tbf.MustNew(units.Mbps, 1000*units.MSS), func(packet.Packet) {
		select {
		case started <- struct{}{}:
		default:
		}
		<-gate
	})
	if err != nil {
		t.Fatal(err)
	}
	// Wedge the consumer on packet 1, fill the one-slot ring with packet 2.
	if err := e.SubmitBatch(h, burstOf(1, 0)); err != nil {
		t.Fatal(err)
	}
	<-started
	if err := e.SubmitBatch(h, burstOf(1, 1)); err != nil {
		t.Fatal(err)
	}

	// Step 1+2: a single control op fails over from the full ring to the
	// control lane (observable via ControlFailovers) and parks — it must
	// NOT report ErrSaturated while the lane has room.
	opA := make(chan error, 1)
	go func() { opA <- e.Flush("x", func(enforcer.Enforcer) {}) }()
	deadline := time.After(10 * time.Second)
	for e.ControlFailovers.Load() == 0 {
		select {
		case err := <-opA:
			t.Fatalf("control op finished (%v) before failing over", err)
		case <-deadline:
			t.Fatal("control op never failed over to the control lane")
		default:
			time.Sleep(time.Millisecond)
		}
	}

	// Step 3: the lane holds 16 items; op A occupies one slot. 16 more
	// ops ⇒ 15 park in the lane, exactly one exhausts it and escalates
	// to ErrSaturated.
	const extra = 16
	errs := make(chan error, extra)
	for i := 0; i < extra; i++ {
		go func() { errs <- e.Flush("x", func(enforcer.Enforcer) {}) }()
	}
	select {
	case err := <-errs:
		if !errors.Is(err, ErrSaturated) {
			t.Fatalf("first completed op reported %v, want ErrSaturated", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("no op escalated to ErrSaturated with a full control lane")
	}

	// Unwedge: queued data and every parked control op drain.
	openGate()
	for i := 0; i < extra-1; i++ {
		select {
		case err := <-errs:
			if err != nil {
				t.Fatalf("parked control op failed after unwedge: %v", err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("parked control op never completed after unwedge")
		}
	}
	select {
	case err := <-opA:
		if err != nil {
			t.Fatalf("failed-over control op errored: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("failed-over control op never completed after unwedge")
	}
	// Every op raced the full ring first: all 17 failed over, 16 parked,
	// 1 saturated.
	if got := e.ControlFailovers.Load(); got != extra+1 {
		t.Errorf("ControlFailovers = %d, want %d", got, extra+1)
	}
	st, err := e.Stats("x")
	if err != nil {
		t.Fatal(err)
	}
	if p, _ := st.Totals(); p != 2 {
		t.Errorf("enforcer saw %d packets after drain, want 2", p)
	}
}

// countingEnforcer counts submissions and transmits everything; the exact
// ground truth for overload accounting.
type countingEnforcer struct{ n atomic.Int64 }

func (c *countingEnforcer) Submit(time.Duration, packet.Packet) enforcer.Verdict {
	c.n.Add(1)
	return enforcer.Transmit
}

// TestOverloadedAccountingExact forces shedding with a one-deep ring and a
// stalled consumer and proves the books balance: packets shed + packets
// delivered to the enforcer == packets submitted, exactly.
func TestOverloadedAccountingExact(t *testing.T) {
	gate := make(chan struct{})
	var once sync.Once
	openGate := func() { once.Do(func() { close(gate) }) }
	defer openGate()

	e := New(Config{Shards: 1, QueueDepth: 2, FlushBurst: 1, CloseTimeout: 5 * time.Second})
	enf := &countingEnforcer{}
	started := make(chan struct{}, 1)
	h, err := e.Add("x", enf, func(packet.Packet) {
		select {
		case started <- struct{}{}:
		default:
		}
		<-gate
	})
	if err != nil {
		t.Fatal(err)
	}
	const submitted = 50
	// Packet 1 wedges the consumer; once it is in the emit hook the shard
	// dequeues nothing more, so of the remaining 49 exactly QueueDepth=2
	// are queued and 47 shed — deterministically.
	if err := e.SubmitBatch(h, burstOf(1, 0)); err != nil {
		t.Fatal(err)
	}
	<-started
	for i := 1; i < submitted; i++ {
		if err := e.SubmitBatch(h, burstOf(1, i)); err != nil {
			t.Fatal(err)
		}
	}
	shed := e.Overloaded.Load()
	if shed != submitted-1-2 {
		t.Errorf("Overloaded = %d, want %d (ring holds 2, one in flight)", shed, submitted-1-2)
	}
	// Unwedge and drain; Close is the barrier.
	openGate()
	rep := e.Close()
	if !rep.Clean {
		t.Errorf("Close not clean after unwedge: %+v", rep)
	}
	delivered := enf.n.Load()
	if delivered+shed != submitted {
		t.Errorf("delivered %d + shed %d = %d, want exactly %d submitted",
			delivered, shed, delivered+shed, submitted)
	}
	// Health attribution matches the global counter.
	if got := e.Health().Shards[0].Shed; got != shed {
		t.Errorf("shard shed counter %d != engine Overloaded %d", got, shed)
	}
}
