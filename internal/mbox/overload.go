package mbox

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"bcpqp/internal/enforcer"
	"bcpqp/internal/obs"
)

// Overload control: graceful degradation when offered load exceeds what the
// engine can enforce.
//
// The engine already sheds at full shard rings — that is the last-resort
// backstop, and it is FIFO-blind: whichever producer happens to hit the full
// ring loses, regardless of how the operator values its traffic. The overload
// plane layered here makes shedding deliberate:
//
//   - A composite pressure signal in [0,1] — the worst shard-ring occupancy
//     fraction, the aggregate-table fill fraction, and a shed-rate EWMA on
//     the paper's 250 ms control window — is maintained by the watchdog and
//     drives an active/inactive flag with hysteresis.
//   - While active, a priority-aware shed policy takes over: each aggregate
//     carries a shed class, and class c's traffic is admitted to a shard
//     ring only while the ring's occupancy is below a per-class ceiling.
//     Ceilings follow the harmonic buffer-sharing rule (arxiv 2511.06514):
//     class c of C may use the fraction (Σ_{j=c}^{C-1} 1/(j+1)) / H_C of the
//     ring, so victims are chosen by configured priority, shed volume splits
//     harmonically across classes instead of falling on whoever enqueues
//     last, and even the lowest class keeps a non-zero ceiling — no single
//     victim is ever starved outright. Class 0 ("shed last") has ceiling 1.0
//     and is never shed proactively, which also makes the plane a strict
//     no-op for engines that never assign classes.
//   - Table pressure tightens the idle-TTL: as the registry fills past half
//     of MaxAggregates the sweeper's TTL shrinks linearly toward MinIdleTTL,
//     so a flash crowd recycles quiescent aggregates instead of pinning the
//     table at its cap.
//   - An Add storm against a full table degrades instead of wedging: Add may
//     evict the least-recently-active aggregate (when it has been idle past
//     AdmissionTTL) without the in-band final-stats barrier — the barrier
//     costs up to 2×ControlTimeout per eviction, which under a storm would
//     serialize the control lane into uselessness. Such evictions report
//     zero Stats through OnEvict, which the OnEvict contract already allows
//     for saturated shards. When no victim is idle enough, Add fails fast
//     with ErrTableFull.
//
// Everything the plane does is visible: Health().Overload, KindOverload /
// KindShed trace events, and the bcpqp_overload_* metric families.

// OverloadConfig configures the engine's overload-control plane.
type OverloadConfig struct {
	// Enabled turns the plane on. When false (the default) the engine
	// behaves exactly as before: ring-full shedding only, no pressure
	// tracking, no admission eviction.
	Enabled bool
	// Classes is the number of shed classes (default 4). Class 0 is shed
	// last (never proactively); class Classes-1 is shed first. Aggregates
	// default to DefaultClass and move with SetShedClass.
	Classes int
	// DefaultClass is the shed class assigned to newly added aggregates
	// (default 0: shed last, the conservative choice).
	DefaultClass int
	// PressureHi is the composite pressure at which the shed plane
	// engages (default 0.75); PressureLo is where it disengages
	// (default 0.5). The gap is the hysteresis band that keeps the plane
	// from flapping at the boundary.
	PressureHi, PressureLo float64
	// Window is the shed-rate EWMA window (default 250ms — the paper's
	// phantom-queue control interval, so "overloaded" is judged on the
	// same timescale enforcement reacts on).
	Window time.Duration
	// ShedRateRef is the shed rate, in packets/sec, that maps to
	// pressure 1.0 on the shed-rate axis (default 100_000).
	ShedRateRef float64
	// MinIdleTTL is the floor the sweeper's idle-TTL is tightened toward
	// as the aggregate table fills (default IdleTTL/8). The TTL scales
	// linearly from IdleTTL at 50% fill to MinIdleTTL at 100%.
	MinIdleTTL time.Duration
	// EvictOnFull lets Add evict the least-recently-active aggregate
	// (idle past AdmissionTTL) when the table is at MaxAggregates,
	// instead of refusing outright.
	EvictOnFull bool
	// AdmissionTTL is the minimum idleness before an aggregate may be
	// evicted on the Add path (default MinIdleTTL, else 10ms). Victims
	// are evicted without the final-stats barrier: OnEvict sees zero
	// Stats, and the control lane is never serialized behind a storm.
	AdmissionTTL time.Duration
}

// withDefaults fills zero fields; idleTTL is the engine's Config.IdleTTL.
func (c OverloadConfig) withDefaults(idleTTL time.Duration) OverloadConfig {
	if c.Classes <= 0 {
		c.Classes = 4
	}
	if c.DefaultClass < 0 || c.DefaultClass >= c.Classes {
		c.DefaultClass = 0
	}
	if c.PressureHi <= 0 || c.PressureHi > 1 {
		c.PressureHi = 0.75
	}
	if c.PressureLo <= 0 || c.PressureLo >= c.PressureHi {
		c.PressureLo = c.PressureHi * 2 / 3
	}
	if c.Window <= 0 {
		c.Window = 250 * time.Millisecond
	}
	if c.ShedRateRef <= 0 {
		c.ShedRateRef = 100_000
	}
	if c.MinIdleTTL <= 0 && idleTTL > 0 {
		c.MinIdleTTL = idleTTL / 8
		if c.MinIdleTTL < time.Millisecond {
			c.MinIdleTTL = time.Millisecond
		}
	}
	if c.AdmissionTTL <= 0 {
		if c.MinIdleTTL > 0 {
			c.AdmissionTTL = c.MinIdleTTL
		} else {
			c.AdmissionTTL = 10 * time.Millisecond
		}
	}
	return c
}

// overloadPlane is the engine's overload state. The EWMA fields are owned by
// the watchdog goroutine; everything else is atomics read by the datapath,
// Health, and Metrics.
type overloadPlane struct {
	cfg OverloadConfig

	// levels[c] is class c's ring-occupancy ceiling in bursts (harmonic
	// split of QueueDepth); levels[0] is 0, the "never shed" sentinel.
	// thresh mirrors levels while the plane is active and is all-zero
	// while inactive — the datapath reads one atomic and compares.
	levels []int32
	thresh []atomic.Int32

	active        atomic.Bool
	transitions   atomic.Int64
	pressureMilli atomic.Int64 // composite pressure × 1000
	ringMilli     atomic.Int64 // worst ring occupancy fraction × 1000
	fillMilli     atomic.Int64 // table fill fraction × 1000
	shedRate      atomic.Int64 // shed-rate EWMA, packets/sec

	// Watchdog-goroutine-local EWMA state (no atomics needed).
	lastShed int64
	lastTick int64
	ewma     float64
}

// newOverloadPlane precomputes the harmonic per-class ceilings for a ring of
// queueDepth bursts.
func newOverloadPlane(cfg OverloadConfig, queueDepth int) *overloadPlane {
	p := &overloadPlane{
		cfg:    cfg,
		levels: harmonicLevels(cfg.Classes, queueDepth),
	}
	p.thresh = make([]atomic.Int32, cfg.Classes)
	return p
}

// harmonicLevels computes the per-class ring ceilings. With H = Σ_{j=1}^{C}
// 1/j, class c (0-based) gets the fraction (Σ_{j=c+1}^{C} 1/j) / H of the
// ring: class 0 gets 1.0 (entry 0 stays 0 — the never-shed sentinel read by
// the datapath), fractions decrease harmonically with class, and class C-1
// still gets (1/C)/H > 0, clamped to at least one burst — the
// never-starve guarantee.
func harmonicLevels(classes, queueDepth int) []int32 {
	h := 0.0
	for j := 1; j <= classes; j++ {
		h += 1 / float64(j)
	}
	levels := make([]int32, classes)
	tail := h
	for c := 1; c < classes; c++ {
		tail -= 1 / float64(c) // tail = Σ_{j=c+1}^{C} 1/j
		lvl := int32(tail / h * float64(queueDepth))
		if lvl < 1 {
			lvl = 1
		}
		levels[c] = lvl
	}
	return levels
}

// errOverloadDisabled reports shed-class operations against an engine built
// without Config.Overload.Enabled.
var errOverloadDisabled = errors.New("mbox: overload control disabled")

// SetShedClass assigns an aggregate's shed class: 0 is shed last (never
// proactively), Config.Overload.Classes-1 is shed first. The change is
// observed by the next submission. Requires Overload.Enabled.
func (e *Engine) SetShedClass(id string, class int) error {
	p := e.overload
	if p == nil {
		return errOverloadDisabled
	}
	if class < 0 || class >= p.cfg.Classes {
		return fmt.Errorf("mbox: shed class %d out of range [0,%d)", class, p.cfg.Classes)
	}
	agg, err := e.aggByID(id)
	if err != nil {
		return err
	}
	agg.shedClass.Store(int32(class))
	return nil
}

// ShedClass reports an aggregate's shed class.
func (e *Engine) ShedClass(id string) (int, error) {
	if e.overload == nil {
		return 0, errOverloadDisabled
	}
	agg, err := e.aggByID(id)
	if err != nil {
		return 0, err
	}
	return int(agg.shedClass.Load()), nil
}

// shedGate reports whether the overload plane sheds a submission for agg at
// its shard's current ring occupancy: true only while the plane is active
// AND the aggregate's class ceiling is exceeded. The fast path is two atomic
// loads and a channel length — no locks, no allocation; for engines without
// the plane the single nil check in the caller is the entire cost.
func (p *overloadPlane) shedGate(s *shard, agg *aggregate) bool {
	th := p.thresh[agg.shedClass.Load()].Load()
	return th != 0 && len(s.in) >= int(th)
}

// shedPriority accounts one proactively shed submission of n packets. Trace
// events ride the shard's existing KindShed coalescing (under s.mu); a
// proactive shed is distinguished from a ring-full shed by carrying the
// aggregate handle (ring-full sheds record Agg=-1).
func (e *Engine) shedPriority(s *shard, agg *aggregate, n int) {
	nn := int64(n)
	e.OverloadShed.Add(nn)
	agg.shed.Add(nn)
	s.shed.Add(nn)
	if s.obs != nil {
		s.mu.Lock()
		s.shedAccum += nn
		if s.shedTick--; s.shedTick <= 0 {
			s.shedTick = e.obsSample
			s.obs.Record(obs.Event{Kind: obs.KindShed, Agg: int64(agg.h), Node: -1,
				A: s.shedAccum, B: int64(agg.shedClass.Load())})
			s.shedAccum = 0
		}
		s.mu.Unlock()
	}
}

// updatePressure recomputes the composite pressure signal. It runs on the
// watchdog goroutine once per WatchdogInterval, immediately after shard
// classification, so "overloaded" is judged at the same cadence as shard
// health.
func (e *Engine) updatePressure(now int64) {
	p := e.overload
	var ring float64
	for _, s := range e.shards {
		if f := float64(len(s.in)) / float64(cap(s.in)); f > ring {
			ring = f
		}
	}
	var fill float64
	if e.cfg.MaxAggregates > 0 {
		fill = float64(e.Len()) / float64(e.cfg.MaxAggregates)
	}
	// Shed-rate EWMA on the paper's 250 ms window: both ring-full and
	// proactive sheds count — sustained shedding is overload regardless
	// of which mechanism did it.
	shedTotal := e.Overloaded.Load() + e.OverloadShed.Load()
	if p.lastTick != 0 {
		if dt := float64(now-p.lastTick) / 1e9; dt > 0 {
			rate := float64(shedTotal-p.lastShed) / dt
			alpha := dt / p.cfg.Window.Seconds()
			if alpha > 1 {
				alpha = 1
			}
			p.ewma += alpha * (rate - p.ewma)
		}
	}
	p.lastTick, p.lastShed = now, shedTotal
	shedFrac := p.ewma / p.cfg.ShedRateRef
	if shedFrac > 1 {
		shedFrac = 1
	}
	pressure := ring
	if fill > pressure {
		pressure = fill
	}
	if shedFrac > pressure {
		pressure = shedFrac
	}
	p.ringMilli.Store(int64(ring * 1000))
	p.fillMilli.Store(int64(fill * 1000))
	p.shedRate.Store(int64(p.ewma))
	p.pressureMilli.Store(int64(pressure * 1000))

	// Hysteresis: engage at PressureHi, disengage at PressureLo. The
	// per-class thresholds are published/cleared here, so the datapath's
	// gate is a dead branch (thresh 0) the moment the plane disengages.
	switch {
	case !p.active.Load() && pressure >= p.cfg.PressureHi:
		p.active.Store(true)
		p.transitions.Add(1)
		for c := 1; c < len(p.levels); c++ {
			p.thresh[c].Store(p.levels[c])
		}
		e.record(nil, obs.Event{Kind: obs.KindOverload, Agg: -1, Node: -1,
			A: 1, B: int64(pressure * 1000), C: int64(p.ewma)})
	case p.active.Load() && pressure <= p.cfg.PressureLo:
		p.active.Store(false)
		p.transitions.Add(1)
		for c := 1; c < len(p.levels); c++ {
			p.thresh[c].Store(0)
		}
		e.record(nil, obs.Event{Kind: obs.KindOverload, Agg: -1, Node: -1,
			A: 0, B: int64(pressure * 1000), C: int64(p.ewma)})
	}
}

// effectiveTTL is the sweeper's idle-TTL after pressure tightening: IdleTTL
// below 50% table fill, then linearly down to MinIdleTTL at 100%. Without
// the plane (or without MaxAggregates) it is IdleTTL unchanged.
func (e *Engine) effectiveTTL() time.Duration {
	ttl := e.cfg.IdleTTL
	p := e.overload
	if p == nil || e.cfg.MaxAggregates <= 0 || p.cfg.MinIdleTTL <= 0 || p.cfg.MinIdleTTL >= ttl {
		return ttl
	}
	fill := float64(e.Len()) / float64(e.cfg.MaxAggregates)
	if fill <= 0.5 {
		return ttl
	}
	f := (fill - 0.5) * 2
	if f > 1 {
		f = 1
	}
	return ttl - time.Duration(f*float64(ttl-p.cfg.MinIdleTTL))
}

// evictForAdmissionLocked finds and unpublishes the least-recently-active
// aggregate that has been idle past AdmissionTTL, making room for an Add
// against a full table. The caller holds e.mu and is responsible for calling
// OnEvict (with zero Stats — deliberately no final-stats barrier, see the
// package comment) after releasing it. Returns nil when the plane is off,
// EvictOnFull is unset, or nothing is idle enough — the Add then degrades
// to ErrTableFull.
func (e *Engine) evictForAdmissionLocked(t *registry, now int64) *aggregate {
	p := e.overload
	if p == nil || !p.cfg.EvictOnFull {
		return nil
	}
	minIdle := int64(p.cfg.AdmissionTTL)
	var victim *aggregate
	var oldest int64
	for _, agg := range t.slots {
		if agg == nil {
			continue
		}
		la := agg.lastActive.Load()
		if now-la <= minIdle {
			continue
		}
		if victim == nil || la < oldest {
			victim, oldest = agg, la
		}
	}
	if victim == nil {
		return nil
	}
	if _, err := e.unpublishLocked(victim.id, func(cur *aggregate) bool { return cur == victim }); err != nil {
		return nil
	}
	e.Evicted.Add(1)
	e.AdmissionEvictions.Add(1)
	e.record(nil, obs.Event{Kind: obs.KindEvict, Agg: int64(victim.h), Node: -1, B: 1})
	return victim
}

// OverloadHealth is the overload plane's slice of a Health snapshot.
type OverloadHealth struct {
	// Enabled mirrors Config.Overload.Enabled.
	Enabled bool
	// Active reports whether the shed plane is currently engaged.
	Active bool
	// Pressure is the composite signal in [0,1]; Ring/TableFill are its
	// occupancy components and ShedRate its EWMA component (packets/sec,
	// un-normalized).
	Pressure  float64
	Ring      float64
	TableFill float64
	ShedRate  float64
	// PriorityShed counts packets shed proactively by class policy
	// (ring-full sheds stay in Health.Overloaded).
	PriorityShed int64
	// AdmissionEvictions counts aggregates evicted on the Add path to
	// admit new ones against a full table.
	AdmissionEvictions int64
	// Transitions counts activation+deactivation edges.
	Transitions int64
}

// overloadHealth snapshots the plane (zero value when disabled).
func (e *Engine) overloadHealth() OverloadHealth {
	p := e.overload
	if p == nil {
		return OverloadHealth{}
	}
	return OverloadHealth{
		Enabled:            true,
		Active:             p.active.Load(),
		Pressure:           float64(p.pressureMilli.Load()) / 1000,
		Ring:               float64(p.ringMilli.Load()) / 1000,
		TableFill:          float64(p.fillMilli.Load()) / 1000,
		ShedRate:           float64(p.shedRate.Load()),
		PriorityShed:       e.OverloadShed.Load(),
		AdmissionEvictions: e.AdmissionEvictions.Load(),
		Transitions:        p.transitions.Load(),
	}
}

// zeroStats is the OnEvict payload for barrier-free evictions.
var zeroStats enforcer.Stats
