package mbox

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bcpqp/internal/packet"
	"bcpqp/internal/tbf"
	"bcpqp/internal/units"
)

// TestEngineConcurrentStress hammers every engine entry point from many
// goroutines at once — single-packet and burst submissions on stable
// handles, Add/Remove churn on short-lived aggregates, and control-plane
// Stats/Lookup polling — then Closes the engine while producers are still
// running. It contains no assertions about throughput; its job is to give
// the race detector (and the shutdown path) something to chew on. Run it
// with -race (the CI verify target does).
func TestEngineConcurrentStress(t *testing.T) {
	clock := &fakeClock{step: 10 * time.Microsecond}
	e := New(Config{
		Shards:        4,
		QueueDepth:    64,
		FlushBurst:    8,
		FlushInterval: 100 * time.Microsecond,
		Clock:         clock.now,
	})

	const stable = 6
	handles := make([]Handle, stable)
	for i := range handles {
		h, err := e.Add(fmt.Sprintf("stable-%d", i),
			tbf.MustNew(50*units.Mbps, 200*units.MSS), nil)
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = h
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var submitted atomic.Int64

	// Single-packet producers.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				h := handles[(g+i)%stable]
				if err := e.Submit(h, pkt(i)); err == nil {
					submitted.Add(1)
				}
			}
		}(g)
	}

	// Burst producers.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := make([]packet.Packet, 16)
			for k := range buf {
				buf[k] = pkt(k)
			}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				h := handles[(g*7+i)%stable]
				if err := e.SubmitBatch(h, buf); err == nil {
					submitted.Add(int64(len(buf)))
				}
			}
		}(g)
	}

	// Add/Remove churn on short-lived aggregates (exercises the COW
	// registry against lock-free readers).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			id := fmt.Sprintf("churn-%d", i%8)
			h, err := e.Add(id, tbf.MustNew(units.Mbps, 50*units.MSS), nil)
			if err == nil {
				_ = e.Submit(h, pkt(i))
				_ = e.SetRate(id, (1+units.Rate(i%4))*units.Mbps)
				_, _ = e.Remove(id)
			}
		}
	}()

	// Control-plane pollers: Stats rides the ordered data ring, Lookup
	// and Len read the registry snapshot.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id := fmt.Sprintf("stable-%d", i%stable)
				_, _ = e.Stats(id)
				_, _ = e.Lookup(id)
				_ = e.Len()
			}
		}()
	}

	time.Sleep(150 * time.Millisecond)
	// Close with producers still running: submissions must fail fast
	// (engine closed) rather than race or deadlock.
	e.Close()
	close(stop)
	wg.Wait()

	if submitted.Load() == 0 {
		t.Fatal("stress run submitted nothing")
	}
	// Post-Close calls stay well-defined.
	if err := e.Submit(handles[0], pkt(0)); err == nil {
		t.Error("Submit after Close succeeded")
	}
	if _, err := e.Add("late", tbf.MustNew(units.Mbps, units.MSS), nil); err == nil {
		t.Error("Add after Close succeeded")
	}
}
