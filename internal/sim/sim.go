// Package sim implements the discrete-event engine on which all experiments
// run.
//
// The engine maintains a virtual clock and a binary heap of pending events.
// Events scheduled for the same instant fire in scheduling order (a stable
// sequence number breaks timestamp ties), which keeps runs deterministic.
// Virtual time is represented as time.Duration since the start of the run.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Event is a scheduled callback. It is returned by the scheduling methods so
// callers can cancel pending events (e.g. retransmission timers).
type Event struct {
	at    time.Duration
	seq   uint64
	fn    func()
	index int // heap index; -1 once fired or cancelled
}

// Cancelled reports whether the event was cancelled or has already fired.
func (e *Event) Cancelled() bool { return e.index < 0 }

// Loop is a single-threaded discrete-event loop.
type Loop struct {
	now    time.Duration
	seq    uint64
	events eventHeap
}

// NewLoop returns an empty event loop at virtual time zero.
func NewLoop() *Loop {
	return &Loop{}
}

// Now returns the current virtual time.
func (l *Loop) Now() time.Duration { return l.now }

// At schedules fn to run at virtual time t. Scheduling in the past panics:
// it always indicates a logic error in a discrete-event model.
func (l *Loop) At(t time.Duration, fn func()) *Event {
	if t < l.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, l.now))
	}
	e := &Event{at: t, seq: l.seq, fn: fn}
	l.seq++
	heap.Push(&l.events, e)
	return e
}

// After schedules fn to run d after the current virtual time.
func (l *Loop) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return l.At(l.now+d, fn)
}

// Cancel removes a pending event. Cancelling a fired or already-cancelled
// event is a no-op.
func (l *Loop) Cancel(e *Event) {
	if e == nil || e.index < 0 {
		return
	}
	heap.Remove(&l.events, e.index)
	e.index = -1
	e.fn = nil
}

// Step fires the next pending event. It returns false if no events remain.
func (l *Loop) Step() bool {
	if len(l.events) == 0 {
		return false
	}
	e := heap.Pop(&l.events).(*Event)
	e.index = -1
	l.now = e.at
	fn := e.fn
	e.fn = nil
	fn()
	return true
}

// Run fires events until the queue empties or virtual time would pass until.
// The clock is left at min(until, time of last fired event); events scheduled
// after until remain pending.
func (l *Loop) Run(until time.Duration) {
	for len(l.events) > 0 {
		if l.events[0].at > until {
			break
		}
		l.Step()
	}
	if l.now < until {
		l.now = until
	}
}

// RunAll fires events until none remain. Use only in workloads that are
// guaranteed to quiesce.
func (l *Loop) RunAll() {
	for l.Step() {
	}
}

// Pending returns the number of scheduled events.
func (l *Loop) Pending() int { return len(l.events) }

// eventHeap orders events by (timestamp, sequence).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
