package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEventOrdering(t *testing.T) {
	l := NewLoop()
	var order []int
	l.At(30*time.Millisecond, func() { order = append(order, 3) })
	l.At(10*time.Millisecond, func() { order = append(order, 1) })
	l.At(20*time.Millisecond, func() { order = append(order, 2) })
	l.RunAll()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("events fired in order %v, want [1 2 3]", order)
	}
	if l.Now() != 30*time.Millisecond {
		t.Errorf("clock = %v, want 30ms", l.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	l := NewLoop()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		l.At(time.Millisecond, func() { order = append(order, i) })
	}
	l.RunAll()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-timestamp events not FIFO: %v", order)
		}
	}
}

func TestRunStopsAtDeadline(t *testing.T) {
	l := NewLoop()
	fired := 0
	l.At(time.Second, func() { fired++ })
	l.At(3*time.Second, func() { fired++ })
	l.Run(2 * time.Second)
	if fired != 1 {
		t.Errorf("fired %d events before deadline, want 1", fired)
	}
	if l.Now() != 2*time.Second {
		t.Errorf("clock = %v, want 2s", l.Now())
	}
	if l.Pending() != 1 {
		t.Errorf("pending = %d, want 1", l.Pending())
	}
	l.Run(4 * time.Second)
	if fired != 2 {
		t.Errorf("fired %d total, want 2", fired)
	}
}

func TestAfter(t *testing.T) {
	l := NewLoop()
	var at time.Duration
	l.At(time.Second, func() {
		l.After(500*time.Millisecond, func() { at = l.Now() })
	})
	l.RunAll()
	if at != 1500*time.Millisecond {
		t.Errorf("After fired at %v, want 1.5s", at)
	}
}

func TestAfterNegativeClamps(t *testing.T) {
	l := NewLoop()
	fired := false
	l.At(time.Second, func() {
		l.After(-time.Second, func() { fired = true })
	})
	l.RunAll()
	if !fired {
		t.Error("negative After never fired")
	}
}

func TestCancel(t *testing.T) {
	l := NewLoop()
	fired := false
	e := l.At(time.Second, func() { fired = true })
	l.Cancel(e)
	l.RunAll()
	if fired {
		t.Error("cancelled event fired")
	}
	if !e.Cancelled() {
		t.Error("event does not report cancelled")
	}
	// Double-cancel and nil-cancel are no-ops.
	l.Cancel(e)
	l.Cancel(nil)
}

func TestCancelOneOfMany(t *testing.T) {
	l := NewLoop()
	var order []int
	events := make([]*Event, 5)
	for i := 0; i < 5; i++ {
		i := i
		events[i] = l.At(time.Duration(i+1)*time.Millisecond, func() { order = append(order, i) })
	}
	l.Cancel(events[2])
	l.RunAll()
	want := []int{0, 1, 3, 4}
	if len(order) != len(want) {
		t.Fatalf("fired %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("fired %v, want %v", order, want)
		}
	}
}

func TestScheduleInPastPanics(t *testing.T) {
	l := NewLoop()
	l.At(time.Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		l.At(500*time.Millisecond, func() {})
	})
	l.RunAll()
}

func TestEventsScheduledDuringRun(t *testing.T) {
	l := NewLoop()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 100 {
			l.After(time.Millisecond, tick)
		}
	}
	l.After(time.Millisecond, tick)
	l.RunAll()
	if count != 100 {
		t.Errorf("chain fired %d times, want 100", count)
	}
	if l.Now() != 100*time.Millisecond {
		t.Errorf("clock = %v, want 100ms", l.Now())
	}
}

func TestHeapPropertyRandomOrder(t *testing.T) {
	f := func(delays []uint16) bool {
		l := NewLoop()
		var fired []time.Duration
		for _, d := range delays {
			at := time.Duration(d) * time.Microsecond
			l.At(at, func() { fired = append(fired, l.Now()) })
		}
		l.RunAll()
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	l := NewLoop()
	if l.Step() {
		t.Error("Step on empty loop returned true")
	}
	l.At(0, func() {})
	if !l.Step() {
		t.Error("Step with pending event returned false")
	}
	if l.Step() {
		t.Error("Step after draining returned true")
	}
}
