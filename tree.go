package bcpqp

import (
	"bcpqp/internal/enforcer"
	"bcpqp/internal/mbox"
	"bcpqp/internal/ptree"
)

// PolicyTree is an allocation-free hierarchical policy-tree enforcer: one
// object covering a whole rooted tree of rate limits — tenant → plan →
// subscriber — with per-node ceilings (phantom queues or token buckets)
// enforced top to bottom and an HTB-style assured-rate layer that lets an
// active subscriber borrow an idle sibling's unused share. The tree lives
// in flat index-linked arrays (no per-node heap objects), so a
// million-leaf tree is a handful of contiguous slices and steady-state
// batch submission performs zero allocations. See internal/ptree for the
// admission semantics.
type PolicyTree = ptree.Tree

// PolicyTreeNode describes one node of a PolicyTree spec: its parent index
// (specs are topologically ordered, root first), an optional ceiling
// Stage, and an optional assured rate enabling the borrowing layer.
type PolicyTreeNode = ptree.NodeSpec

// NewPolicyTree builds a policy tree from a topologically ordered spec.
func NewPolicyTree(spec []PolicyTreeNode) (*PolicyTree, error) { return ptree.New(spec) }

// MustNewPolicyTree is NewPolicyTree that panics on error.
func MustNewPolicyTree(spec []PolicyTreeNode) *PolicyTree { return ptree.MustNew(spec) }

// TreeEnforcer is the node-addressed enforcement contract implemented by
// *PolicyTree and *Cascade (a chain is the degenerate unary tree): packet
// submission at a chosen node, and per-node stats, reconfiguration and
// snapshot access. A Middlebox aggregate registered with AddTree exposes
// all of it through per-node handles and control calls.
type TreeEnforcer = enforcer.TreeEnforcer

// NodeID addresses one node of a TreeEnforcer; nodes are dense indices
// assigned in spec order (the root is 0).
type NodeID = enforcer.NodeID

// NoNode is the invalid NodeID.
const NoNode = enforcer.NoNode

// ErrBadNode reports a node address outside the tree. Test with errors.Is.
var ErrBadNode = enforcer.ErrBadNode

// LeafHandle addresses one tree node of a Middlebox aggregate on the
// datapath: mint with Middlebox.Leaf, submit with SubmitLeaf or
// SubmitLeafBatch. Removing the aggregate invalidates every LeafHandle of
// its tree at once.
type LeafHandle = mbox.LeafHandle

// NoLeafHandle is the invalid leaf handle returned alongside errors.
var NoLeafHandle = mbox.NoLeafHandle
